(** Parameterized link/router/compute model for the cycle-honest backend.

    {!Timed_simulator}'s original engine hard-coded the 1998 abstraction:
    store-and-forward switching, one volume unit per link per cycle,
    unbounded router queues and instantaneous compute. A [Link_model.t]
    names each of those assumptions so the timed backend can be swept away
    from them one axis at a time:

    - [bandwidth]: volume units a link moves per cycle — a hop of [v]
      units holds its link for [ceil (v / bandwidth)] cycles;
    - [flit] + [wormhole]: with [wormhole] on, a message is cut into
      flit-sized fragments that pipeline hop by hop (virtual cut-through
      at flit granularity) instead of storing-and-forwarding the whole
      packet at every hop;
    - [queue_depth]: bounded router input queues with backpressure — a
      packet that finishes its hop but finds the downstream queue full
      {e blocks in place}, holding its current link, which stalls the
      traffic behind it (and so on upstream);
    - [compute_cycles]: per-volume-unit occupancy of the executing node —
      a rank sinking [v] reference units computes for
      [compute_cycles * v] cycles at round start and cannot {e inject}
      its own packets until done;
    - [energy]: the two-level tally ({!Energy}'s transport + leakage
      regime) the simulator prices its report with.

    {!degenerate} pins every axis to the original engine's values; the
    differential suite ([test_timed_model.ml]) keeps
    [run ~model:degenerate] byte-identical to the pre-model reports. *)

type energy = {
  per_hop : float;  (** energy of one volume unit crossing one link *)
  leak : float;  (** static energy of one processor for one cycle *)
}

type t = {
  bandwidth : int;  (** volume units per link per cycle, [>= 1] *)
  flit : int;  (** fragment size for wormhole pipelining, [>= 1] *)
  wormhole : bool;
      (** [true]: messages pipeline as flit-sized fragments; [false]:
          store-and-forward whole packets (the paper's model) *)
  queue_depth : int option;
      (** waiting packets a link's input queue holds ([>= 1]) — the packet
          currently transmitting is not counted; [None] = unbounded *)
  compute_cycles : int;
      (** cycles of node occupancy per reference volume unit executed;
          [0] = compute is free (the paper's model) *)
  energy : energy;
}

(** Matches {!Energy.default}: transport dominates leakage, the PIM-era
    regime. *)
val default_energy : energy

(** The pre-model engine's exact configuration: [bandwidth = 1],
    store-and-forward, unbounded queues, free compute, default energy.
    [run ~model:degenerate] is pinned byte-identical to the legacy
    reports. *)
val degenerate : t

(** [create ()] is {!degenerate}; each argument overrides one axis.
    @raise Invalid_argument if [bandwidth], [flit] or a [queue_depth] is
    [< 1], or [compute_cycles < 0]. *)
val create :
  ?bandwidth:int ->
  ?flit:int ->
  ?wormhole:bool ->
  ?queue_depth:int ->
  ?compute_cycles:int ->
  ?energy:energy ->
  unit ->
  t

(** [is_degenerate t] — [true] iff [t] times exactly like the legacy
    engine (energy parameters are priced after the fact and do not
    count). *)
val is_degenerate : t -> bool

(** [fragments t ~volume] is the list of packet sizes a message of
    [volume] units is injected as: [[volume]] under store-and-forward,
    flit-sized fragments (last one short) under wormhole. Invariants the
    suite pins: the fragments sum to [volume], every fragment is
    [>= 1] and [<= max flit volume], and order is
    full-flits-then-remainder.
    @raise Invalid_argument if [volume < 0]. *)
val fragments : t -> volume:int -> int list

(** [hop_cycles t units] is [ceil (units / bandwidth)] — cycles one hop
    of [units] volume holds its link. *)
val hop_cycles : t -> int -> int

val pp : Format.formatter -> t -> unit
