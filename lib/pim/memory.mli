(** Per-processor bounded local memories.

    The paper assumes each PIM processor "can hold a limited number of data";
    in the experiments the capacity is twice the minimum required (e.g. a
    4×4 array holding an 8×8 data array gives each processor capacity 8).
    This module tracks slot occupancy so schedulers can implement the
    processor-list fallback when a chosen center is full. *)

type t

(** [create mesh ~capacity] gives every processor [capacity] free slots.
    @raise Invalid_argument if [capacity < 0]. *)
val create : Mesh.t -> capacity:int -> t

(** [unbounded mesh] models infinite memories (capacity checks always pass). *)
val unbounded : Mesh.t -> t

(** [capacity_for ~data_count ~mesh ~headroom] is the paper's capacity rule:
    [headroom * ceil(data_count / size mesh)]. The experiments use
    [headroom = 2]. @raise Invalid_argument on non-positive arguments. *)
val capacity_for : data_count:int -> mesh:Mesh.t -> headroom:int -> int

val mesh : t -> Mesh.t

(** [capacity t] is the per-processor capacity, or [None] when unbounded. *)
val capacity : t -> int option

(** [used t rank] is the number of occupied slots at [rank]. *)
val used : t -> int -> int

(** [ban t rank] marks [rank]'s memory as failed: it holds nothing from now
    on — [free] is [0], [is_full] is [true] and [allocate] refuses, even on
    an unbounded tracker. Bans survive {!reset} (the hardware stays dead
    when occupancy is cleared). How dead processors are excluded from
    placement. *)
val ban : t -> int -> unit

(** [banned t rank] is [true] iff [rank] was {!ban}ned. *)
val banned : t -> int -> bool

(** [free t rank] is the number of free slots at [rank]; [max_int] when
    unbounded. *)
val free : t -> int -> int

(** [is_full t rank] is [true] iff no slot is free at [rank]. *)
val is_full : t -> int -> bool

(** [allocate t rank] takes one slot. Returns [false] (and changes nothing)
    if [rank] is full. *)
val allocate : t -> int -> bool

(** [release t rank] returns one slot.
    @raise Invalid_argument if [rank] has no occupied slot. *)
val release : t -> int -> unit

(** [reset t] frees every slot. *)
val reset : t -> unit

(** [copy t] is an independent snapshot. *)
val copy : t -> t

(** [total_used t] is the sum of occupied slots over the whole array. *)
val total_used : t -> int

val pp : Format.formatter -> t -> unit
