type energy = { per_hop : float; leak : float }

type t = {
  bandwidth : int;
  flit : int;
  wormhole : bool;
  queue_depth : int option;
  compute_cycles : int;
  energy : energy;
}

(* Kept numerically identical to Energy.default; Energy depends on
   Timed_simulator (which depends on this module), so the constants live
   here and a test pins the two in sync. *)
let default_energy = { per_hop = 10.; leak = 0.05 }

let degenerate =
  {
    bandwidth = 1;
    flit = 1;
    wormhole = false;
    queue_depth = None;
    compute_cycles = 0;
    energy = default_energy;
  }

let create ?(bandwidth = 1) ?(flit = 1) ?(wormhole = false) ?queue_depth
    ?(compute_cycles = 0) ?(energy = default_energy) () =
  if bandwidth < 1 then invalid_arg "Link_model.create: bandwidth < 1";
  if flit < 1 then invalid_arg "Link_model.create: flit < 1";
  (match queue_depth with
  | Some d when d < 1 -> invalid_arg "Link_model.create: queue_depth < 1"
  | _ -> ());
  if compute_cycles < 0 then
    invalid_arg "Link_model.create: compute_cycles < 0";
  { bandwidth; flit; wormhole; queue_depth; compute_cycles; energy }

let is_degenerate t =
  t.bandwidth = 1 && (not t.wormhole) && t.queue_depth = None
  && t.compute_cycles = 0

let fragments t ~volume =
  if volume < 0 then invalid_arg "Link_model.fragments: volume < 0";
  if volume = 0 then []
  else if not t.wormhole then [ volume ]
  else begin
    let full = volume / t.flit and rest = volume mod t.flit in
    let tail = if rest = 0 then [] else [ rest ] in
    let rec fills n acc = if n = 0 then acc else fills (n - 1) (t.flit :: acc) in
    fills full tail
  end

let hop_cycles t units = (units + t.bandwidth - 1) / t.bandwidth

let pp ppf t =
  Format.fprintf ppf "bw=%d %s%s queue=%s compute=%d" t.bandwidth
    (if t.wormhole then "wormhole" else "store-and-forward")
    (if t.wormhole then Printf.sprintf "(flit=%d)" t.flit else "")
    (match t.queue_depth with
    | None -> "unbounded"
    | Some d -> string_of_int d)
    t.compute_cycles
