let links_of_route path =
  let rec go acc = function
    | a :: (b :: _ as rest) -> go ((a, b) :: acc) rest
    | [ _ ] | [] -> List.rev acc
  in
  Array.of_list (go [] path)

let oracle_of_fault mesh fault =
  if Fault.is_none fault then None else Some (Fault.Oracle.create mesh fault)

(* The pre-model engine, kept verbatim as the pinned oracle for the
   differential suite (test_timed_model.ml): [run ~model:degenerate] must
   reproduce these reports byte-identically. Like Cost.Naive and
   Layered.solve_dense, this copy is the spec — including its O(n²)
   [List.mem] membership scan, which the live engine replaces with a
   hash-set. Do not "fix" it. *)
module Reference = struct
  type packet = {
    id : int;
    links : (int * int) array; (* consecutive (from, to) hops of the route *)
    volume : int;
    mutable hop : int; (* index of the link being traversed *)
    mutable remaining : int; (* volume units left on the current link *)
  }

  type round_report = {
    round : int;
    cycles : int;
    messages : int;
    volume_hops : int;
    utilization : float;
  }

  type report = {
    rounds : round_report list;
    total_cycles : int;
    total_volume_hops : int;
  }

  (* Simulate one batch of packets to completion; returns the makespan. *)
  let simulate ?oracle mesh (msgs : Router.message list) =
    let live =
      List.filter
        (fun (m : Router.message) -> m.src <> m.dst && m.volume > 0)
        msgs
    in
    let route_of (m : Router.message) =
      match oracle with
      | None -> Mesh.xy_route mesh ~src:m.src ~dst:m.dst
      | Some o -> (
          match Fault.Oracle.route o ~src:m.src ~dst:m.dst with
          | Some path -> path
          | None -> raise (Fault.Unreachable (m.src, m.dst)))
    in
    let packets =
      List.mapi
        (fun id (m : Router.message) ->
          let links = links_of_route (route_of m) in
          { id; links; volume = m.volume; hop = 0; remaining = m.volume })
        live
    in
    (* per-link state: the packet currently transmitting plus a FIFO queue *)
    let owner : (int * int, packet option ref) Hashtbl.t = Hashtbl.create 64 in
    let queue : (int * int, packet Queue.t) Hashtbl.t = Hashtbl.create 64 in
    let queue_of link =
      match Hashtbl.find_opt queue link with
      | Some q -> q
      | None ->
          let q = Queue.create () in
          Hashtbl.add queue link q;
          q
    in
    let owner_of link =
      match Hashtbl.find_opt owner link with
      | Some r -> r
      | None ->
          let r = ref None in
          Hashtbl.add owner link r;
          r
    in
    let active_links = ref [] in
    let activate link =
      if not (List.mem link !active_links) then
        active_links := link :: !active_links
    in
    List.iter
      (fun p ->
        let link = p.links.(0) in
        Queue.add p (queue_of link);
        activate link)
      packets;
    let remaining_packets = ref (List.length packets) in
    let cycle = ref 0 in
    while !remaining_packets > 0 do
      (* grant idle links to the head of their queue *)
      List.iter
        (fun link ->
          let o = owner_of link in
          if !o = None then
            let q = queue_of link in
            if not (Queue.is_empty q) then o := Some (Queue.pop q))
        !active_links;
      (* transmit one unit on every busy link; collect hop completions *)
      let advanced = ref [] in
      List.iter
        (fun link ->
          let o = owner_of link in
          match !o with
          | Some p ->
              p.remaining <- p.remaining - 1;
              if p.remaining = 0 then begin
                o := None;
                advanced := p :: !advanced
              end
          | None -> ())
        !active_links;
      (* completed hops queue at the next link starting next cycle *)
      List.iter
        (fun p ->
          p.hop <- p.hop + 1;
          if p.hop >= Array.length p.links then decr remaining_packets
          else begin
            p.remaining <- p.volume;
            let link = p.links.(p.hop) in
            Queue.add p (queue_of link);
            activate link
          end)
        (List.sort (fun a b -> Int.compare a.id b.id) !advanced);
      incr cycle
    done;
    let volume_hops =
      List.fold_left
        (fun acc p -> acc + (p.volume * Array.length p.links))
        0 packets
    in
    let live_links = List.length !active_links in
    (!cycle, List.length packets, volume_hops, live_links)

  let round_makespan ?(fault = Fault.none) mesh msgs =
    let cycles, _, _, _ =
      simulate ?oracle:(oracle_of_fault mesh fault) mesh msgs
    in
    cycles

  let run ?(fault = Fault.none) mesh rounds =
    let oracle = oracle_of_fault mesh fault in
    let reports =
      List.mapi
        (fun idx { Simulator.migrations; references } ->
          let cycles, messages, volume_hops, live_links =
            simulate ?oracle mesh (migrations @ references)
          in
          let utilization =
            if cycles = 0 || live_links = 0 then 0.
            else float_of_int volume_hops /. float_of_int (live_links * cycles)
          in
          { round = idx; cycles; messages; volume_hops; utilization })
        rounds
    in
    {
      rounds = reports;
      total_cycles = List.fold_left (fun acc r -> acc + r.cycles) 0 reports;
      total_volume_hops =
        List.fold_left (fun acc r -> acc + r.volume_hops) 0 reports;
    }
end

(* ------------------------------------------------------------------ *)
(* The live engine: same three-phase cycle loop, parameterized by a
   Link_model.t. Under Link_model.degenerate every branch below reduces
   to the Reference semantics step for step: one fragment per message
   with the same injection ids, min bw remaining = 1 unit per cycle,
   queue room always available (so the advance phase never parks a
   packet), and a ready array of zeros (so grants are unconditional). *)

exception Deadlock of { cycle : int; in_flight : int }

type round_report = {
  round : int;
  cycles : int;
  messages : int;
  volume_hops : int;
  utilization : float;
  flits : int;
  link_utilization : float;
  bandwidth_idle : int;
  queue_stall_cycles : int;
  compute_idle : int;
}

type report = {
  rounds : round_report list;
  total_cycles : int;
  total_volume_hops : int;
  link_utilization : float;
  bandwidth_idle : int;
  queue_stall_cycles : int;
  compute_idle : int;
  energy_transport : float;
  energy_leakage : float;
  energy : float;
}

type packet = {
  id : int; (* injection order over fragments; FIFO tie-break *)
  src : int; (* injecting rank, for compute-occupancy eligibility *)
  links : (int * int) array;
  volume : int; (* fragment volume re-transmitted at every hop *)
  mutable hop : int;
  mutable remaining : int; (* units left on the current hop; 0 = blocked *)
}

(* Per-link state, reached through one hashtable probe on activation and
   then iterated directly: [order] carries the state records themselves,
   so the cycle loop never re-probes the table (the Reference engine
   re-probes twice per link per cycle and pays an O(n²) List.mem on every
   activation). *)
type link_state = {
  link : int * int;
  mutable owner : packet option;
  q : packet Queue.t;
  mutable busy : int; (* cycles spent transmitting *)
  mutable held : int; (* cycles occupied but idle: blocked owner or
                         compute-ineligible head *)
}

type round_stats = {
  rs_cycles : int;
  rs_messages : int;
  rs_flits : int;
  rs_volume_hops : int;
  rs_live_links : int;
  rs_busy : int; (* Σ per-link busy cycles *)
  rs_live : int; (* Σ per-link busy + held cycles *)
  rs_stalls : int; (* Σ blocked-packet cycles (backpressure) *)
}

let simulate_model ?oracle ~(model : Link_model.t) ~(ready : int array) mesh
    (msgs : Router.message list) =
  let live =
    List.filter (fun (m : Router.message) -> m.src <> m.dst && m.volume > 0) msgs
  in
  let route_of (m : Router.message) =
    match oracle with
    | None -> Mesh.xy_route mesh ~src:m.src ~dst:m.dst
    | Some o -> (
        match Fault.Oracle.route o ~src:m.src ~dst:m.dst with
        | Some path -> path
        | None -> raise (Fault.Unreachable (m.src, m.dst)))
  in
  (* One packet per fragment, ids in message order then fragment order:
     with wormhole off this is exactly one packet per message with the
     Reference ids; with wormhole on the fragments of a message enter the
     first link's FIFO consecutively and pipeline hop by hop. *)
  let next_id = ref 0 in
  let packets =
    List.concat_map
      (fun (m : Router.message) ->
        let links = links_of_route (route_of m) in
        List.map
          (fun volume ->
            let id = !next_id in
            incr next_id;
            { id; src = m.src; links; volume; hop = 0; remaining = volume })
          (Link_model.fragments model ~volume:m.volume))
      live
  in
  if !Obs.enabled then
    List.iter
      (fun p -> Obs.Metrics.observe "sim.packet_hops" (Array.length p.links))
      packets;
  let states : (int * int, link_state) Hashtbl.t = Hashtbl.create 64 in
  let active = ref [] in
  let state_of link =
    match Hashtbl.find_opt states link with
    | Some st -> st
    | None ->
        let st = { link; owner = None; q = Queue.create (); busy = 0; held = 0 } in
        Hashtbl.add states link st;
        active := st :: !active;
        st
  in
  let room st =
    match model.queue_depth with
    | None -> true
    | Some d -> Queue.length st.q < d
  in
  List.iter (fun p -> Queue.add p (state_of p.links.(0)).q) packets;
  let max_ready = Array.fold_left max 0 ready in
  let remaining_packets = ref (List.length packets) in
  let stalls = ref 0 in
  let blocked = ref [] in
  let cycle = ref 0 in
  while !remaining_packets > 0 do
    (* grant idle links to the head of their queue; a hop-0 head whose
       source rank is still computing is not eligible yet *)
    List.iter
      (fun st ->
        if st.owner = None && not (Queue.is_empty st.q) then begin
          let head = Queue.peek st.q in
          if head.hop > 0 || !cycle >= ready.(head.src) then
            st.owner <- Some (Queue.pop st.q)
        end)
      !active;
    (* transmit up to [bandwidth] units on every busy link *)
    let units_moved = ref 0 in
    let finished = ref [] in
    List.iter
      (fun st ->
        match st.owner with
        | Some p when p.remaining > 0 ->
            let units = min model.bandwidth p.remaining in
            p.remaining <- p.remaining - units;
            units_moved := !units_moved + units;
            st.busy <- st.busy + 1;
            if p.remaining = 0 then finished := (st, p) :: !finished
        | Some _ ->
            (* blocked packet from an earlier cycle holds the link idle *)
            st.held <- st.held + 1
        | None -> if not (Queue.is_empty st.q) then st.held <- st.held + 1)
      !active;
    (* advance blocked and freshly-finished packets in id order: retire,
       or move to the next link if its queue has room; a full downstream
       queue parks the packet in place, holding its link (backpressure) *)
    let candidates =
      List.sort
        (fun (_, a) (_, b) -> Int.compare a.id b.id)
        (!blocked @ !finished)
    in
    blocked := [];
    let advanced = ref false in
    List.iter
      (fun (st, p) ->
        if p.hop + 1 >= Array.length p.links then begin
          st.owner <- None;
          decr remaining_packets;
          advanced := true
        end
        else begin
          let next = state_of p.links.(p.hop + 1) in
          if room next then begin
            st.owner <- None;
            p.hop <- p.hop + 1;
            p.remaining <- p.volume;
            Queue.add p next.q;
            advanced := true
          end
          else begin
            incr stalls;
            blocked := (st, p) :: !blocked
          end
        end)
      candidates;
    if
      !remaining_packets > 0
      && !units_moved = 0
      && (not !advanced)
      && !cycle >= max_ready
    then raise (Deadlock { cycle = !cycle; in_flight = !remaining_packets });
    incr cycle
  done;
  let cycles =
    if model.compute_cycles > 0 then max !cycle max_ready else !cycle
  in
  let volume_hops =
    List.fold_left (fun acc p -> acc + (p.volume * Array.length p.links)) 0
      packets
  in
  let busy, held =
    List.fold_left
      (fun (b, h) st -> (b + st.busy, h + st.held))
      (0, 0) !active
  in
  {
    rs_cycles = cycles;
    rs_messages = List.length live;
    rs_flits = List.length packets;
    rs_volume_hops = volume_hops;
    rs_live_links = List.length !active;
    rs_busy = busy;
    rs_live = busy + held;
    rs_stalls = !stalls;
  }

(* Compute occupancy: a rank executing a window's operations cannot
   inject until it is done. A rank's occupancy is [compute_cycles] per
   reference volume unit it sinks this round — local (src = dst)
   references count: the data is resident but the operations still
   execute. *)
let ready_of ~(model : Link_model.t) ~size (ops : Router.message list) =
  let ready = Array.make size 0 in
  if model.compute_cycles > 0 then
    List.iter
      (fun (m : Router.message) ->
        if m.volume > 0 then
          ready.(m.dst) <- ready.(m.dst) + (model.compute_cycles * m.volume))
      ops;
  ready

let compute_idle_of ~(model : Link_model.t) ~ready cycles =
  if model.compute_cycles = 0 then 0
  else Array.fold_left (fun acc r -> acc + (cycles - min cycles r)) 0 ready

let report_of_stats ~model ~ready idx s =
  {
    round = idx;
    cycles = s.rs_cycles;
    messages = s.rs_messages;
    volume_hops = s.rs_volume_hops;
    utilization =
      (if s.rs_cycles = 0 || s.rs_live_links = 0 then 0.
       else
         float_of_int s.rs_volume_hops
         /. float_of_int (s.rs_live_links * s.rs_cycles));
    flits = s.rs_flits;
    link_utilization =
      (if s.rs_live = 0 then 0.
       else float_of_int s.rs_busy /. float_of_int s.rs_live);
    bandwidth_idle = (s.rs_live_links * s.rs_cycles) - s.rs_busy;
    queue_stall_cycles = s.rs_stalls;
    compute_idle = compute_idle_of ~model ~ready s.rs_cycles;
  }

let round_stats ?(fault = Fault.none) ?(model = Link_model.degenerate) mesh msgs
    =
  let ready = ready_of ~model ~size:(Mesh.size mesh) msgs in
  let s =
    simulate_model ?oracle:(oracle_of_fault mesh fault) ~model ~ready mesh msgs
  in
  report_of_stats ~model ~ready 0 s

let round_makespan ?fault ?model mesh msgs =
  (round_stats ?fault ?model mesh msgs).cycles

let run ?(fault = Fault.none) ?(model = Link_model.degenerate) mesh rounds =
  Obs.Span.with_ ~name:"sim.timed_run" @@ fun () ->
  let oracle = oracle_of_fault mesh fault in
  let size = Mesh.size mesh in
  let busy_sum = ref 0 and live_sum = ref 0 in
  let reports =
    List.mapi
      (fun idx { Simulator.migrations; references } ->
        let ready = ready_of ~model ~size references in
        let s = simulate_model ?oracle ~model ~ready mesh (migrations @ references) in
        if !Obs.enabled then begin
          Obs.Metrics.add "sim.cycles" s.rs_cycles;
          Obs.Metrics.add "sim.messages" s.rs_messages;
          Obs.Metrics.add "sim.volume_hops" s.rs_volume_hops;
          Obs.Metrics.add "sim.flits" s.rs_flits;
          Obs.Metrics.add "sim.queue_stalls" s.rs_stalls
        end;
        busy_sum := !busy_sum + s.rs_busy;
        live_sum := !live_sum + s.rs_live;
        report_of_stats ~model ~ready idx s)
      rounds
  in
  let total_cycles = List.fold_left (fun acc r -> acc + r.cycles) 0 reports in
  let total_volume_hops =
    List.fold_left (fun acc r -> acc + r.volume_hops) 0 reports
  in
  (* Same expressions as Energy.breakdown, priced with the model's
     parameters, so [report.energy = Energy.of_report mesh report] holds
     bit for bit under the default parameters (a pinned test). *)
  let energy_transport =
    model.energy.per_hop *. float_of_int total_volume_hops
  in
  let energy_leakage =
    model.energy.leak *. float_of_int size *. float_of_int total_cycles
  in
  {
    rounds = reports;
    total_cycles;
    total_volume_hops;
    link_utilization =
      (if !live_sum = 0 then 0.
       else float_of_int !busy_sum /. float_of_int !live_sum);
    bandwidth_idle =
      List.fold_left (fun acc (r : round_report) -> acc + r.bandwidth_idle) 0
        reports;
    queue_stall_cycles =
      List.fold_left
        (fun acc (r : round_report) -> acc + r.queue_stall_cycles)
        0 reports;
    compute_idle =
      List.fold_left (fun acc (r : round_report) -> acc + r.compute_idle) 0
        reports;
    energy_transport;
    energy_leakage;
    energy = energy_transport +. energy_leakage;
  }

let pp_report fmt r =
  Format.fprintf fmt
    "timed: %d cycles over %d rounds (%d volume-hops, mean utilization %.2f, \
     link utilization %.2f, %d stall cycles, energy %.1f)"
    r.total_cycles (List.length r.rounds) r.total_volume_hops
    (match r.rounds with
    | [] -> 0.
    | rounds ->
        List.fold_left (fun acc x -> acc +. x.utilization) 0. rounds
        /. float_of_int (List.length rounds))
    r.link_utilization r.queue_stall_cycles r.energy
