type packet = {
  id : int;
  links : (int * int) array; (* consecutive (from, to) hops of the route *)
  volume : int;
  mutable hop : int; (* index of the link being traversed *)
  mutable remaining : int; (* volume units left on the current link *)
}

type round_report = {
  round : int;
  cycles : int;
  messages : int;
  volume_hops : int;
  utilization : float;
}

type report = {
  rounds : round_report list;
  total_cycles : int;
  total_volume_hops : int;
}

let links_of_route path =
  let rec go acc = function
    | a :: (b :: _ as rest) -> go ((a, b) :: acc) rest
    | [ _ ] | [] -> List.rev acc
  in
  Array.of_list (go [] path)

(* Simulate one batch of packets to completion; returns the makespan. *)
let simulate ?oracle mesh (msgs : Router.message list) =
  let live =
    List.filter (fun (m : Router.message) -> m.src <> m.dst && m.volume > 0) msgs
  in
  let route_of (m : Router.message) =
    match oracle with
    | None -> Mesh.xy_route mesh ~src:m.src ~dst:m.dst
    | Some o -> (
        match Fault.Oracle.route o ~src:m.src ~dst:m.dst with
        | Some path -> path
        | None -> raise (Fault.Unreachable (m.src, m.dst)))
  in
  let packets =
    List.mapi
      (fun id (m : Router.message) ->
        let links = links_of_route (route_of m) in
        { id; links; volume = m.volume; hop = 0; remaining = m.volume })
      live
  in
  if !Obs.enabled then
    List.iter
      (fun p -> Obs.Metrics.observe "sim.packet_hops" (Array.length p.links))
      packets;
  (* per-link state: the packet currently transmitting plus a FIFO queue *)
  let owner : (int * int, packet option ref) Hashtbl.t = Hashtbl.create 64 in
  let queue : (int * int, packet Queue.t) Hashtbl.t = Hashtbl.create 64 in
  let queue_of link =
    match Hashtbl.find_opt queue link with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.add queue link q;
        q
  in
  let owner_of link =
    match Hashtbl.find_opt owner link with
    | Some r -> r
    | None ->
        let r = ref None in
        Hashtbl.add owner link r;
        r
  in
  let active_links = ref [] in
  let activate link =
    if not (List.mem link !active_links) then
      active_links := link :: !active_links
  in
  List.iter
    (fun p ->
      let link = p.links.(0) in
      Queue.add p (queue_of link);
      activate link)
    packets;
  let remaining_packets = ref (List.length packets) in
  let cycle = ref 0 in
  while !remaining_packets > 0 do
    (* grant idle links to the head of their queue *)
    List.iter
      (fun link ->
        let o = owner_of link in
        if !o = None then
          let q = queue_of link in
          if not (Queue.is_empty q) then o := Some (Queue.pop q))
      !active_links;
    (* transmit one unit on every busy link; collect hop completions *)
    let advanced = ref [] in
    List.iter
      (fun link ->
        let o = owner_of link in
        match !o with
        | Some p ->
            p.remaining <- p.remaining - 1;
            if p.remaining = 0 then begin
              o := None;
              advanced := p :: !advanced
            end
        | None -> ())
      !active_links;
    (* completed hops queue at the next link starting next cycle *)
    List.iter
      (fun p ->
        p.hop <- p.hop + 1;
        if p.hop >= Array.length p.links then decr remaining_packets
        else begin
          p.remaining <- p.volume;
          let link = p.links.(p.hop) in
          Queue.add p (queue_of link);
          activate link
        end)
      (List.sort (fun a b -> Int.compare a.id b.id) !advanced);
    incr cycle
  done;
  let volume_hops =
    List.fold_left
      (fun acc p -> acc + (p.volume * Array.length p.links))
      0 packets
  in
  let live_links = List.length !active_links in
  (!cycle, List.length packets, volume_hops, live_links)

let oracle_of_fault mesh fault =
  if Fault.is_none fault then None else Some (Fault.Oracle.create mesh fault)

let round_makespan ?(fault = Fault.none) mesh msgs =
  let cycles, _, _, _ = simulate ?oracle:(oracle_of_fault mesh fault) mesh msgs in
  cycles

let run ?(fault = Fault.none) mesh rounds =
  Obs.Span.with_ ~name:"sim.timed_run" @@ fun () ->
  let oracle = oracle_of_fault mesh fault in
  let reports =
    List.mapi
      (fun idx { Simulator.migrations; references } ->
        let cycles, messages, volume_hops, live_links =
          simulate ?oracle mesh (migrations @ references)
        in
        if !Obs.enabled then begin
          Obs.Metrics.add "sim.cycles" cycles;
          Obs.Metrics.add "sim.messages" messages;
          Obs.Metrics.add "sim.volume_hops" volume_hops
        end;
        let utilization =
          if cycles = 0 || live_links = 0 then 0.
          else
            float_of_int volume_hops /. float_of_int (live_links * cycles)
        in
        { round = idx; cycles; messages; volume_hops; utilization })
      rounds
  in
  {
    rounds = reports;
    total_cycles = List.fold_left (fun acc r -> acc + r.cycles) 0 reports;
    total_volume_hops =
      List.fold_left (fun acc r -> acc + r.volume_hops) 0 reports;
  }

let pp_report fmt r =
  Format.fprintf fmt
    "timed: %d cycles over %d rounds (%d volume-hops, mean utilization %.2f)"
    r.total_cycles (List.length r.rounds) r.total_volume_hops
    (match r.rounds with
    | [] -> 0.
    | rounds ->
        List.fold_left (fun acc x -> acc +. x.utilization) 0. rounds
        /. float_of_int (List.length rounds))
