(** Layered shortest-path DP, the shape of the GOMCDS cost-graph.

    A layered problem has [n_layers] layers of [width] nodes each, plus an
    implicit source before layer 0 and sink after the last layer. Edge
    weights are given by callbacks, so the O(n·m²) dynamic program runs
    without materializing the graph — GOMCDS calls this once per datum. The
    explicit-{!Digraph} route (via {!to_digraph}) exists for cross-checking
    against {!Shortest_path}. *)

(** Flat layer-vector buffer for the axis-table solvers: a 1-D [int]
    bigarray, so arena slabs can be allocated {e uninitialized} (only
    rows actually written cost memory traffic — an [int array] would
    zero-fill every row on allocation). *)
type buffer = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type problem = {
  n_layers : int;  (** number of layers (execution windows) *)
  width : int;  (** nodes per layer (processors) *)
  enter_cost : int -> int;
      (** [enter_cost j] — weight of the source → (layer 0, node j) edge *)
  step_cost : layer:int -> int -> int -> int;
      (** [step_cost ~layer j k] — weight of (layer, node j) →
          (layer+1, node k); [layer] is the {e destination} layer index,
          [1 <= layer <= n_layers - 1] *)
}

(** [solve p] returns the minimal source→sink cost and one witness: the node
    chosen in each layer, length [n_layers].
    @raise Invalid_argument if [n_layers <= 0] or [width <= 0]. *)
val solve : problem -> int * int array

(** [solve_filtered p ~allowed] restricts layer [i] to nodes [j] with
    [allowed ~layer:i j = true] (used for memory-capacity exclusion).
    Returns [None] when no feasible path exists. *)
val solve_filtered :
  problem -> allowed:(layer:int -> int -> bool) -> (int * int array) option

(** [solve_dense ~dist ~vectors] is {!solve} specialized to the cost shape
    every scheduler here uses — [enter_cost j = vectors.(0).(j)] and
    [step_cost ~layer j k = dist.(j).(k) + vectors.(layer).(k)] — with the
    tables read directly in the inner loop (no closure per edge).
    [vectors] has one row per layer; [dist] is [width] × [width]. Results,
    including tie-breaking, are identical to the callback form. *)
val solve_dense : dist:int array array -> vectors:int array array -> int * int array

(** [solve_dense_filtered ~dist ~vectors ~allowed] is {!solve_filtered} on
    the same dense representation. *)
val solve_dense_filtered :
  dist:int array array ->
  vectors:int array array ->
  allowed:(layer:int -> int -> bool) ->
  (int * int array) option

(** [solve_axes ?offsets ~xdist ~ydist ~vectors ~width ~n_layers ()] is
    {!solve_dense} with the step distance decomposed onto the two per-axis
    tables of a row-major [rows]×[cols] mesh — [xdist] is [cols]×[cols],
    [ydist] [rows]×[rows], [width = cols·rows] and
    [dist(j, k) = xdist.(j mod cols).(k mod cols) +
    ydist.(j / cols).(k / cols)] — so no O(width²) rank-to-rank matrix is
    ever materialized. [vectors] is one flat buffer holding the layer cost
    rows: layer [w] occupies
    [vectors.(offsets.(w)) .. vectors.(offsets.(w) + width - 1)]. Offsets
    may repeat — a compact arena slab from {!Sched.Problem.layer_slab}
    points every non-referencing layer at one shared zero row. When
    [offsets] is omitted the rows are assumed back to back
    ([offsets.(w) = w·width]). Results, including every tie-break, are
    identical to {!solve_dense} over the factored full table.
    @raise Invalid_argument if the axis tables do not factor [width], an
    offset row overruns the buffer, or (without [offsets]) the buffer is
    shorter than [n_layers · width]. *)
val solve_axes :
  ?offsets:int array ->
  xdist:int array array ->
  ydist:int array array ->
  vectors:buffer ->
  width:int ->
  n_layers:int ->
  unit ->
  int * int array

(** [solve_axes_filtered ?offsets ~xdist ~ydist ~vectors ~width ~n_layers
    ~allowed ()] is {!solve_filtered} on the axis-table representation. *)
val solve_axes_filtered :
  ?offsets:int array ->
  xdist:int array array ->
  ydist:int array array ->
  vectors:buffer ->
  width:int ->
  n_layers:int ->
  allowed:(layer:int -> int -> bool) ->
  unit ->
  (int * int array) option

(** One member block of a multi-array layered problem (see
    {!solve_group}): the member's two per-axis distance tables, its flat
    arena slab and the per-layer offset table into it — exactly the
    inputs {!solve_axes} takes for a single array. *)
type group_member = {
  g_xdist : int array array;  (** [cols]×[cols] x-axis distance table *)
  g_ydist : int array array;  (** [rows]×[rows] y-axis distance table *)
  g_vectors : buffer;  (** the member's flat layer-vector slab *)
  g_offsets : int array;  (** row offset of each layer in [g_vectors] *)
}

(** [solve_group ~members ~move_cost ~consts ~n_layers ~allowed ()] is the
    layered DP over a {e group} of PIM arrays: each layer is the disjoint
    union of the member blocks concatenated in member order (the global
    node index of member [i]'s local node [j] is
    [Σ_{i' < i} width(i') + j] — the {!Multi.Array_group} rank), and a
    trajectory may either step within its member (priced by the member's
    axis tables, exactly as {!solve_axes}) or migrate to any node of
    another member at the flat inter-array price [move_cost src dst]
    ([src]/[dst] are {e member} indices, only read for [src <> dst]).
    Because the inter-array metric is flat, the block-to-block cross
    product collapses to one scalar edge per ordered member pair — per
    layer the DP costs O(Σ width(i)² + n_members²), never
    O((Σ width)²). [consts ~layer ~member] is added to every node of the
    member in that layer (the cross-array reference cost of hosting the
    datum there — a constant per member, see DESIGN.md §12).

    Tie-breaking: the intra-member relaxation runs first with the usual
    ascending scans; cross edges are applied after with the same strict
    [<] (the source is each member's previous-layer entry minimum,
    lowest global rank on ties, members visited ascending), so staying
    inside a member beats migrating at equal cost, and a 1-member group
    with zero [consts] is byte-identical to {!solve_axes}. Returns
    [None] when [allowed] empties some layer.
    @raise Invalid_argument on empty [members], non-positive [n_layers],
    empty member axis tables, or an offset row outside a member slab. *)
val solve_group :
  members:group_member array ->
  move_cost:(int -> int -> int) ->
  consts:(layer:int -> member:int -> int) ->
  n_layers:int ->
  allowed:(layer:int -> int -> bool) ->
  unit ->
  (int * int array) option

(** [to_digraph p] materializes the cost-graph exactly as the paper describes
    (pseudo source node, pseudo destination node, zero-weight edges into the
    sink) and returns [(graph, source, sink, node_id)] where
    [node_id ~layer j] is the graph node for processor [j] in window
    [layer]. *)
val to_digraph :
  problem -> Digraph.t * int * int * (layer:int -> int -> int)
