type buffer = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type problem = {
  n_layers : int;
  width : int;
  enter_cost : int -> int;
  step_cost : layer:int -> int -> int -> int;
}

type group_member = {
  g_xdist : int array array;
  g_ydist : int array array;
  g_vectors : buffer;
  g_offsets : int array;
}

let validate p =
  if p.n_layers <= 0 then invalid_arg "Layered: n_layers must be positive";
  if p.width <= 0 then invalid_arg "Layered: width must be positive"

(* DP work counters, reported once per solve (see DESIGN.md
   "Observability"): a node is expanded when its out-edges are relaxed,
   so per layer [nodes] = sources with a finite cost and [edges] =
   nodes x reachable targets. Totals are per-datum and therefore
   independent of how solves are fanned out across domains. *)
let report_solve ~nodes ~edges =
  if !Obs.enabled then begin
    Obs.Metrics.incr "layered.solves";
    Obs.Metrics.add "layered.nodes_expanded" nodes;
    Obs.Metrics.add "layered.edges_relaxed" edges
  end

(* Forward DP over layers. [dist.(j)] is the best cost of reaching node [j]
   of the current layer; [choice.(layer).(j)] records the predecessor. *)
let solve_general p ~allowed =
  validate p;
  Obs.Span.with_ ~name:"layered.solve" @@ fun () ->
  let inf = max_int in
  let dist = Array.make p.width inf in
  let choice = Array.make_matrix p.n_layers p.width (-1) in
  for j = 0 to p.width - 1 do
    if allowed ~layer:0 j then dist.(j) <- p.enter_cost j
  done;
  let nodes = ref 0 and edges = ref 0 in
  for layer = 1 to p.n_layers - 1 do
    let finite = ref 0 in
    Array.iter (fun d -> if d <> inf then incr finite) dist;
    let next = Array.make p.width inf in
    let allowed_k = ref 0 in
    for k = 0 to p.width - 1 do
      if allowed ~layer k then begin
        incr allowed_k;
        for j = 0 to p.width - 1 do
          if dist.(j) <> inf then begin
            let c = dist.(j) + p.step_cost ~layer j k in
            if c < next.(k) then begin
              next.(k) <- c;
              choice.(layer).(k) <- j
            end
          end
        done
      end
    done;
    nodes := !nodes + !finite;
    edges := !edges + (!finite * !allowed_k);
    Array.blit next 0 dist 0 p.width
  done;
  report_solve ~nodes:!nodes ~edges:!edges;
  let best = ref (-1) in
  for j = 0 to p.width - 1 do
    if dist.(j) <> inf && (!best = -1 || dist.(j) < dist.(!best)) then
      best := j
  done;
  if !best = -1 then None
  else begin
    let centers = Array.make p.n_layers (-1) in
    centers.(p.n_layers - 1) <- !best;
    for layer = p.n_layers - 1 downto 1 do
      centers.(layer - 1) <- choice.(layer).(centers.(layer))
    done;
    Some (dist.(!best), centers)
  end

let solve p =
  match solve_general p ~allowed:(fun ~layer:_ _ -> true) with
  | Some r -> r
  | None -> assert false (* unrestricted problem is always feasible *)

let solve_filtered p ~allowed = solve_general p ~allowed

(* Dense specialization of [solve_general] for the ubiquitous cost shape
   enter = vectors.(0), step = dist + vectors.(layer): straight table
   reads in the inner loop instead of two closure calls per edge. The
   candidate scan visits (k, j) in the same order with the same strict
   comparison as [solve_general], so predecessors and final centers break
   ties identically. *)
let solve_dense_general ~dist ~vectors ~allowed =
  let n_layers = Array.length vectors in
  if n_layers <= 0 then invalid_arg "Layered: n_layers must be positive";
  let width = Array.length vectors.(0) in
  if width <= 0 then invalid_arg "Layered: width must be positive";
  Obs.Span.with_ ~name:"layered.solve" @@ fun () ->
  let inf = max_int in
  let cur = Array.make width inf in
  let choice = Array.make_matrix n_layers width (-1) in
  let v0 = vectors.(0) in
  for j = 0 to width - 1 do
    if allowed ~layer:0 j then cur.(j) <- v0.(j)
  done;
  let best = Array.make width inf in
  let from = Array.make width (-1) in
  let nodes = ref 0 in
  for layer = 1 to n_layers - 1 do
    Array.fill best 0 width inf;
    for j = 0 to width - 1 do
      let dj = cur.(j) in
      if dj <> inf then begin
        incr nodes;
        let row = dist.(j) in
        for k = 0 to width - 1 do
          let c = dj + row.(k) in
          if c < best.(k) then begin
            best.(k) <- c;
            from.(k) <- j
          end
        done
      end
    done;
    let v = vectors.(layer) in
    let ch = choice.(layer) in
    for k = 0 to width - 1 do
      if best.(k) <> inf && allowed ~layer k then begin
        cur.(k) <- best.(k) + v.(k);
        ch.(k) <- from.(k)
      end
      else cur.(k) <- inf
    done
  done;
  report_solve ~nodes:!nodes ~edges:(!nodes * width);
  let best_node = ref (-1) in
  for j = 0 to width - 1 do
    if cur.(j) <> inf && (!best_node = -1 || cur.(j) < cur.(!best_node))
    then best_node := j
  done;
  if !best_node = -1 then None
  else begin
    let centers = Array.make n_layers (-1) in
    centers.(n_layers - 1) <- !best_node;
    for layer = n_layers - 1 downto 1 do
      centers.(layer - 1) <- choice.(layer).(centers.(layer))
    done;
    Some (cur.(!best_node), centers)
  end

(* Axis-table form of [solve_dense_general]: the step distance is read off
   the two per-axis tables (dist(j,k) = xd(jx,kx) + yd(jy,ky)) so no
   O(width²) rank-to-rank matrix ever exists, and the layer vectors are
   rows of one flat arena buffer — row [layer] starts at
   [offsets.(layer)], or [layer * width] when no offset table is given
   (back-to-back layout). Offsets may repeat: a compact arena points every
   zero layer at one shared row. The relaxation visits sources j ascending
   and targets k ascending (k = ky·cols + kx in row-major order) with the
   same strict comparison as the dense form, so predecessors and final
   centers break ties identically — [test/test_fastpath.ml] pins the two
   byte-equal. *)
let solve_axes_general ?offsets ~xdist ~ydist ~vectors ~width ~n_layers
    ~allowed () =
  if n_layers <= 0 then invalid_arg "Layered: n_layers must be positive";
  if width <= 0 then invalid_arg "Layered: width must be positive";
  let cols = Array.length xdist and rows = Array.length ydist in
  if cols * rows <> width then
    invalid_arg "Layered: axis tables do not factor the layer width";
  let dim = Bigarray.Array1.dim vectors in
  let offs =
    match offsets with
    | Some o ->
        if Array.length o < n_layers then
          invalid_arg "Layered: offset table shorter than n_layers";
        Array.iter
          (fun off ->
            if off < 0 || off + width > dim then
              invalid_arg "Layered: layer offset outside the vector buffer")
          o;
        o
    | None ->
        if dim < n_layers * width then
          invalid_arg
            "Layered: flat vector buffer shorter than n_layers x width";
        Array.init n_layers (fun w -> w * width)
  in
  Obs.Span.with_ ~name:"layered.solve" @@ fun () ->
  let inf = max_int in
  let cur = Array.make width inf in
  let choice = Array.make_matrix n_layers width (-1) in
  let off0 = offs.(0) in
  for j = 0 to width - 1 do
    if allowed ~layer:0 j then cur.(j) <- vectors.{off0 + j}
  done;
  let best = Array.make width inf in
  let from = Array.make width (-1) in
  let nodes = ref 0 in
  for layer = 1 to n_layers - 1 do
    Array.fill best 0 width inf;
    for j = 0 to width - 1 do
      let dj = cur.(j) in
      if dj <> inf then begin
        incr nodes;
        let xrow = xdist.(j mod cols) and yrow = ydist.(j / cols) in
        let k = ref 0 in
        for ky = 0 to rows - 1 do
          let base = dj + yrow.(ky) in
          for kx = 0 to cols - 1 do
            let c = base + xrow.(kx) in
            if c < best.(!k) then begin
              best.(!k) <- c;
              from.(!k) <- j
            end;
            incr k
          done
        done
      end
    done;
    let voff = offs.(layer) in
    let ch = choice.(layer) in
    for k = 0 to width - 1 do
      if best.(k) <> inf && allowed ~layer k then begin
        cur.(k) <- best.(k) + vectors.{voff + k};
        ch.(k) <- from.(k)
      end
      else cur.(k) <- inf
    done
  done;
  report_solve ~nodes:!nodes ~edges:(!nodes * width);
  let best_node = ref (-1) in
  for j = 0 to width - 1 do
    if cur.(j) <> inf && (!best_node = -1 || cur.(j) < cur.(!best_node))
    then best_node := j
  done;
  if !best_node = -1 then None
  else begin
    let centers = Array.make n_layers (-1) in
    centers.(n_layers - 1) <- !best_node;
    for layer = n_layers - 1 downto 1 do
      centers.(layer - 1) <- choice.(layer).(centers.(layer))
    done;
    Some (cur.(!best_node), centers)
  end

let solve_axes ?offsets ~xdist ~ydist ~vectors ~width ~n_layers () =
  match
    solve_axes_general ?offsets ~xdist ~ydist ~vectors ~width ~n_layers
      ~allowed:(fun ~layer:_ _ -> true)
      ()
  with
  | Some r -> r
  | None -> assert false (* unrestricted problem is always feasible *)

let solve_axes_filtered ?offsets ~xdist ~ydist ~vectors ~width ~n_layers
    ~allowed () =
  solve_axes_general ?offsets ~xdist ~ydist ~vectors ~width ~n_layers
    ~allowed ()

(* Multi-array form of [solve_axes_general]: the layer is the disjoint
   union of member blocks (one per PIM array), each with its own axis
   tables and arena slab, concatenated in member order so a global node
   index is [base.(i) + local]. Within a block the relaxation is exactly
   the per-member copy of [solve_axes_general]'s inner loops. Between
   blocks the inter-array fabric is a flat metric — every node of member
   [jm] reaches every node of member [i] at the same price
   [move_cost jm i] — so the cross product of block nodes collapses to
   one scalar edge per ordered member pair: take each source member's
   entry minimum (lowest global rank on ties), add the member-pair move
   cost, and offer it to every node of the target block. Cross edges are
   applied after the intra pass with the same strict [<], sources
   visited in ascending member order, so staying inside the member wins
   every tie and a 1-member group is byte-identical to [solve_axes]. *)
let solve_group_general ~members ~move_cost ~consts ~n_layers ~allowed () =
  let n_members = Array.length members in
  if n_members <= 0 then invalid_arg "Layered: members must be nonempty";
  if n_layers <= 0 then invalid_arg "Layered: n_layers must be positive";
  let widths =
    Array.map
      (fun m ->
        let cols = Array.length m.g_xdist and rows = Array.length m.g_ydist in
        if cols <= 0 || rows <= 0 then
          invalid_arg "Layered: member axis tables must be nonempty";
        cols * rows)
      members
  in
  let bases = Array.make (n_members + 1) 0 in
  for i = 0 to n_members - 1 do
    bases.(i + 1) <- bases.(i) + widths.(i)
  done;
  let total = bases.(n_members) in
  Array.iteri
    (fun i m ->
      let dim = Bigarray.Array1.dim m.g_vectors in
      if Array.length m.g_offsets < n_layers then
        invalid_arg "Layered: member offset table shorter than n_layers";
      Array.iter
        (fun off ->
          if off < 0 || off + widths.(i) > dim then
            invalid_arg "Layered: member layer offset outside the vector buffer")
        m.g_offsets)
    members;
  Obs.Span.with_ ~name:"layered.solve_group" @@ fun () ->
  let inf = max_int in
  let cur = Array.make total inf in
  let choice = Array.make_matrix n_layers total (-1) in
  for i = 0 to n_members - 1 do
    let m = members.(i) in
    let off0 = m.g_offsets.(0) and b = bases.(i) in
    let c0 = consts ~layer:0 ~member:i in
    for j = 0 to widths.(i) - 1 do
      if allowed ~layer:0 (b + j) then cur.(b + j) <- m.g_vectors.{off0 + j} + c0
    done
  done;
  let best = Array.make total inf in
  let from = Array.make total (-1) in
  let minv = Array.make n_members inf in
  let minr = Array.make n_members (-1) in
  let nodes = ref 0 in
  for layer = 1 to n_layers - 1 do
    Array.fill best 0 total inf;
    (* per-member entry minima over the previous layer: the single source
       every outgoing cross edge of that member reroots at (lowest global
       rank on ties, matching the ascending scans everywhere else) *)
    for i = 0 to n_members - 1 do
      minv.(i) <- inf;
      minr.(i) <- -1;
      let b = bases.(i) in
      for j = 0 to widths.(i) - 1 do
        let d = cur.(b + j) in
        if d < minv.(i) then begin
          minv.(i) <- d;
          minr.(i) <- b + j
        end
      done
    done;
    for i = 0 to n_members - 1 do
      let m = members.(i) in
      let cols = Array.length m.g_xdist and rows = Array.length m.g_ydist in
      let b = bases.(i) in
      for j = 0 to widths.(i) - 1 do
        let dj = cur.(b + j) in
        if dj <> inf then begin
          incr nodes;
          let xrow = m.g_xdist.(j mod cols) and yrow = m.g_ydist.(j / cols) in
          let k = ref b in
          for ky = 0 to rows - 1 do
            let basey = dj + yrow.(ky) in
            for kx = 0 to cols - 1 do
              let c = basey + xrow.(kx) in
              if c < best.(!k) then begin
                best.(!k) <- c;
                from.(!k) <- b + j
              end;
              incr k
            done
          done
        end
      done
    done;
    for i = 0 to n_members - 1 do
      let cv = ref inf and cf = ref (-1) in
      for jm = 0 to n_members - 1 do
        if jm <> i && minv.(jm) <> inf then begin
          let c = minv.(jm) + move_cost jm i in
          if c < !cv then begin
            cv := c;
            cf := minr.(jm)
          end
        end
      done;
      if !cf >= 0 then begin
        let b = bases.(i) in
        for k = 0 to widths.(i) - 1 do
          if !cv < best.(b + k) then begin
            best.(b + k) <- !cv;
            from.(b + k) <- !cf
          end
        done
      end
    done;
    let ch = choice.(layer) in
    for i = 0 to n_members - 1 do
      let m = members.(i) in
      let voff = m.g_offsets.(layer) and b = bases.(i) in
      let ci = consts ~layer ~member:i in
      for k = 0 to widths.(i) - 1 do
        let g = b + k in
        if best.(g) <> inf && allowed ~layer g then begin
          cur.(g) <- best.(g) + m.g_vectors.{voff + k} + ci;
          ch.(g) <- from.(g)
        end
        else cur.(g) <- inf
      done
    done
  done;
  report_solve ~nodes:!nodes ~edges:(!nodes * total);
  let best_node = ref (-1) in
  for j = 0 to total - 1 do
    if cur.(j) <> inf && (!best_node = -1 || cur.(j) < cur.(!best_node)) then
      best_node := j
  done;
  if !best_node = -1 then None
  else begin
    let centers = Array.make n_layers (-1) in
    centers.(n_layers - 1) <- !best_node;
    for layer = n_layers - 1 downto 1 do
      centers.(layer - 1) <- choice.(layer).(centers.(layer))
    done;
    Some (cur.(!best_node), centers)
  end

let solve_group = solve_group_general

let solve_dense ~dist ~vectors =
  match solve_dense_general ~dist ~vectors ~allowed:(fun ~layer:_ _ -> true)
  with
  | Some r -> r
  | None -> assert false (* unrestricted problem is always feasible *)

let solve_dense_filtered ~dist ~vectors ~allowed =
  solve_dense_general ~dist ~vectors ~allowed

let to_digraph p =
  validate p;
  let node_id ~layer j = 2 + (layer * p.width) + j in
  let source = 0 and sink = 1 in
  let g = Digraph.create ~n_nodes:(2 + (p.n_layers * p.width)) in
  for j = 0 to p.width - 1 do
    Digraph.add_edge g ~src:source ~dst:(node_id ~layer:0 j)
      ~weight:(p.enter_cost j)
  done;
  for layer = 1 to p.n_layers - 1 do
    for j = 0 to p.width - 1 do
      for k = 0 to p.width - 1 do
        Digraph.add_edge g
          ~src:(node_id ~layer:(layer - 1) j)
          ~dst:(node_id ~layer k)
          ~weight:(p.step_cost ~layer j k)
      done
    done
  done;
  for j = 0 to p.width - 1 do
    Digraph.add_edge g ~src:(node_id ~layer:(p.n_layers - 1) j) ~dst:sink
      ~weight:0
  done;
  (g, source, sink, node_id)
