(** Observability: metrics registry, span tracing, stable exports.

    Everything is off until [enabled] is set; instrumented hot paths
    then pay only a ref read and a branch. Metric names are a stable
    API — the catalog lives in DESIGN.md ("Observability"). *)

module Json = Jsonx
module Metrics = Metrics
module Span = Span
module Export = Export
module Clock = Clock
module Failpoint = Failpoint

(** Global switch. Default [false]: every recording call is a no-op. *)
val enabled : bool ref

(** Wall clock in microseconds (for instrumentation timing). *)
val now_us : unit -> float

(** Clear metrics shards and the span log. *)
val reset : unit -> unit

(** Run [f] with [enabled] set, restoring the previous value after
    (also on exception). Does not reset. *)
val with_enabled : (unit -> 'a) -> 'a
