(* Span-based tracing.

   Each domain keeps its own stack of open frames (Domain-local
   storage), so nesting is tracked per domain: a span opened inside an
   Engine worker roots a fresh tree on that worker. Completed spans are
   appended to one global list under a mutex — spans close orders of
   magnitude less often than metrics record, so the lock is cold.

   [with_] unwinds via [Fun.protect]: a body that raises still closes
   its span and pops the stack before the exception propagates. *)

type completed = {
  id : int;
  parent : int; (* -1 = root *)
  name : string;
  domain : int;
  start_us : float;
  dur_us : float;
}

let now_us () = Unix.gettimeofday () *. 1e6

let next_id = Atomic.make 1
let completed_mutex = Mutex.create ()
let completed : completed list ref = ref [] (* reverse completion order *)

type frame = { fid : int; fstart : float }

let stack_key : frame list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let with_ ~name f =
  if not !Switch.enabled then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let parent = match !stack with [] -> -1 | top :: _ -> top.fid in
    let id = Atomic.fetch_and_add next_id 1 in
    let start = now_us () in
    stack := { fid = id; fstart = start } :: !stack;
    Fun.protect
      ~finally:(fun () ->
        let stop = now_us () in
        (match !stack with
        | top :: rest when top.fid = id -> stack := rest
        | _ -> stack := List.filter (fun fr -> fr.fid <> id) !stack);
        let c =
          {
            id;
            parent;
            name;
            domain = (Domain.self () :> int);
            start_us = start;
            dur_us = stop -. start;
          }
        in
        Mutex.lock completed_mutex;
        completed := c :: !completed;
        Mutex.unlock completed_mutex)
      f
  end

let spans () =
  Mutex.lock completed_mutex;
  let l = List.rev !completed in
  Mutex.unlock completed_mutex;
  l

let reset () =
  Mutex.lock completed_mutex;
  completed := [];
  Mutex.unlock completed_mutex
