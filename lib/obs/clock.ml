external monotonic_s : unit -> float = "pimsched_monotonic_s"

let now_s = monotonic_s
let now_us () = monotonic_s () *. 1e6
