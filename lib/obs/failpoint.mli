(** Deterministic failure injection at named sites.

    A {e failpoint} is a named place in the code — [serve.read],
    [engine.task] — where a test or a chaos run can inject a failure
    that production code never sees: with the global switch off (the
    default) every [hit] is one [ref] read and a branch, so failpoints
    stay compiled into release binaries at no measurable cost (gated by
    [bench]'s serve section).

    Sites are registered once, at module-initialization time, by the
    code that owns them ({!site} is idempotent); the catalog lives in
    DESIGN.md §15. Each site carries a policy:

    - [Off] — never fires.
    - [Raise] — [hit] raises {!Injected}.
    - [Delay ms] — [hit] sleeps [ms] milliseconds.
    - [Short_read] — {!clamp} truncates a byte count to 1 (exercises
      read-loop reassembly).
    - [Partial_write] — {!clamp} halves a byte count (exercises
      write-all loops).

    A policy optionally fires with probability [p] (drawn from a
    per-site PRNG seeded by [seed], so a fixed seed yields a fixed
    firing schedule on a serial path) and at most [n] times (an atomic
    countdown — the way a test arranges "fail once, then succeed", and
    the only mode whose schedule is exact under parallel hits).

    Policies come from {!set} or from {!configure}'s spec string, the
    grammar the [PIMSCHED_FAILPOINTS] environment variable and the
    serve [--failpoints] flag share:

    {v site=action[,key=value...][;site=action...] v}

    where [action] is [off], [raise], [delay:<ms>], [short_read] or
    [partial_write], and the keys are [p=<float>], [n=<int>],
    [seed=<int>]. Example:

    {v serve.solve=raise,n=1;serve.read=short_read,p=0.5,seed=7 v} *)

type action =
  | Off
  | Raise
  | Delay of float  (** milliseconds *)
  | Short_read
  | Partial_write

type site

exception Injected of string
(** Raised by [hit] on a site whose policy fired [Raise]; the payload is
    the site name. *)

(** Global switch. [false] (the default) makes {!hit} and {!clamp}
    no-ops; {!configure} and {!set} flip it on, {!clear} flips it off. *)
val enabled : bool ref

(** [site name] registers (or looks up) the failpoint named [name].
    Call it once at module-initialization time and keep the handle —
    lookups by name on a hot path would defeat the no-op guarantee. *)
val site : string -> site

val name : site -> string

(** [all ()] is every registered site name, sorted. *)
val all : unit -> string list

(** [hit s] evaluates [s]'s policy: no-op when disabled or [Off];
    raises {!Injected} under [Raise]; sleeps under [Delay]. The
    byte-count policies do nothing here — pair the site with {!clamp}.
    Counters [failpoint.hits] / [failpoint.fired] record activity when
    {!Obs.enabled} is also on. *)
val hit : site -> unit

(** [clamp s n] bounds an I/O byte count: [1] under a firing
    [Short_read], [max 1 (n / 2)] under a firing [Partial_write], [n]
    otherwise (including when disabled, [n <= 1], or the policy is not
    a byte-count action). *)
val clamp : site -> int -> int

(** [set name ?p ?n ?seed action] arms one site (registering it if
    needed — specs may name sites whose module has not initialized yet)
    and sets [enabled]. [p] defaults to [1.] (always fire), [n] to
    unlimited, [seed] to [0].
    @raise Invalid_argument on [p] outside [0..1] or [n < 0]. *)
val set : string -> ?p:float -> ?n:int -> ?seed:int -> action -> unit

(** [configure spec] parses the grammar above and arms every listed
    site; sets [enabled] (even for an all-[off] spec, which is how the
    bench measures the armed-but-idle overhead). The empty string is
    accepted and only sets [enabled].
    @raise Invalid_argument on a malformed spec. *)
val configure : string -> unit

(** [clear ()] resets every site to [Off] with fresh counters and
    clears [enabled]. *)
val clear : unit -> unit

(** [fired s] is how many times [s]'s policy has fired since the last
    {!clear}. *)
val fired : site -> int

(** [stats ()] is [(name, hits, fired)] per registered site, sorted by
    name — the chaos report's failpoint section. *)
val stats : unit -> (string * int * int) list
