(** Minimal JSON tree and printer — hand-rolled, no dependencies.

    Strings are escaped per RFC 8259; non-finite floats print as [null]
    (JSON has no spelling for them). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
val to_channel : out_channel -> t -> unit

(** [write_file path v] writes [v] followed by a newline to [path]. *)
val write_file : string -> t -> unit

type error = { offset : int; message : string }
(** A parse failure: [offset] is the byte position in the input where the
    problem was detected (0-based), [message] says what was expected. *)

(** [parse s] reads one JSON value from [s] — objects, arrays, strings,
    numbers, [true]/[false]/[null] — strictly per RFC 8259: no trailing
    commas, no comments, no unquoted keys, nothing but whitespace after
    the value. Numbers without fraction or exponent that fit in [int]
    become [Int]; all others become [Float]. String escapes, including
    [\uXXXX] (and surrogate pairs, re-encoded as UTF-8), are decoded.
    Containers nested deeper than 512 levels fail with a typed error —
    the recursive-descent parser recurses per level, and a hostile
    ["[[[["… line must come back as [Error], never [Stack_overflow].
    The serve protocol's request decoder — errors carry the byte offset
    so clients can point at the offending span. *)
val parse : string -> (t, error) result

(** [error_to_string e] is ["<message> at byte <offset>"]. *)
val error_to_string : error -> string
