(** Minimal JSON tree and printer — hand-rolled, no dependencies.

    Strings are escaped per RFC 8259; non-finite floats print as [null]
    (JSON has no spelling for them). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
val to_channel : out_channel -> t -> unit

(** [write_file path v] writes [v] followed by a newline to [path]. *)
val write_file : string -> t -> unit
