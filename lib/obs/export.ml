(* Snapshot/export: stable JSON and human-readable renderings of the
   metrics registry and the span log. The JSON shapes carry a "schema"
   tag so downstream tooling can detect format changes. *)

let metrics_json ?(extra = []) (snap : Metrics.snapshot) =
  let hist (h : Metrics.hist_snapshot) =
    Jsonx.Obj
      [
        ("bounds", Jsonx.List (Array.to_list h.bounds |> List.map (fun b -> Jsonx.Int b)));
        ("counts", Jsonx.List (Array.to_list h.counts |> List.map (fun c -> Jsonx.Int c)));
        ("sum", Jsonx.Int h.sum);
        ("count", Jsonx.Int h.count);
      ]
  in
  Jsonx.Obj
    (("schema", Jsonx.String "pim-sched-metrics/1")
     :: extra
    @ [
        ("counters", Jsonx.Obj (List.map (fun (k, v) -> (k, Jsonx.Int v)) snap.counters));
        ("gauges", Jsonx.Obj (List.map (fun (k, v) -> (k, Jsonx.Int v)) snap.gauges));
        ("histograms", Jsonx.Obj (List.map (fun (k, h) -> (k, hist h)) snap.histograms));
      ])

(* Chrome trace_event format: one complete ("X") event per span, with
   timestamps re-based to the earliest span so the numbers stay small.
   Load the file at chrome://tracing or https://ui.perfetto.dev. *)
let chrome_trace spans =
  let t0 =
    List.fold_left
      (fun acc (s : Span.completed) -> Float.min acc s.start_us)
      infinity spans
  in
  let t0 = if Float.is_finite t0 then t0 else 0. in
  Jsonx.Obj
    [
      ( "traceEvents",
        Jsonx.List
          (List.map
             (fun (s : Span.completed) ->
               Jsonx.Obj
                 [
                   ("name", Jsonx.String s.name);
                   ("ph", Jsonx.String "X");
                   ("ts", Jsonx.Float (s.start_us -. t0));
                   ("dur", Jsonx.Float s.dur_us);
                   ("pid", Jsonx.Int 0);
                   ("tid", Jsonx.Int s.domain);
                   ( "args",
                     Jsonx.Obj
                       [ ("id", Jsonx.Int s.id); ("parent", Jsonx.Int s.parent) ]
                   );
                 ])
             spans) );
      ("displayTimeUnit", Jsonx.String "ms");
    ]

let pretty_us us =
  if us >= 1e6 then Printf.sprintf "%.2f s" (us /. 1e6)
  else if us >= 1e3 then Printf.sprintf "%.2f ms" (us /. 1e3)
  else Printf.sprintf "%.0f us" us

(* Plain-text flame summary: siblings aggregated by name (total time,
   call count), children nested below, heaviest first. Spans recorded on
   worker domains have no parent there, so they surface as extra roots. *)
let flame_summary spans =
  let buf = Buffer.create 512 in
  let known = Hashtbl.create 64 in
  List.iter (fun (s : Span.completed) -> Hashtbl.replace known s.id ()) spans;
  let children = Hashtbl.create 64 in
  List.iter
    (fun (s : Span.completed) ->
      let key = if Hashtbl.mem known s.parent then s.parent else -1 in
      Hashtbl.replace children key
        (s :: (Option.value ~default:[] (Hashtbl.find_opt children key))))
    spans;
  let children_of id =
    List.rev (Option.value ~default:[] (Hashtbl.find_opt children id))
  in
  let rec render depth group =
    (* aggregate this sibling level by name, keeping first-seen order *)
    let order = ref [] in
    let agg = Hashtbl.create 8 in
    List.iter
      (fun (s : Span.completed) ->
        match Hashtbl.find_opt agg s.name with
        | Some (total, count, ids) ->
            Hashtbl.replace agg s.name (total +. s.dur_us, count + 1, s.id :: ids)
        | None ->
            order := s.name :: !order;
            Hashtbl.replace agg s.name (s.dur_us, 1, [ s.id ]))
      group;
    let rows =
      List.rev_map (fun name -> (name, Hashtbl.find agg name)) !order
      |> List.sort (fun (_, (a, _, _)) (_, (b, _, _)) -> Float.compare b a)
    in
    List.iter
      (fun (name, (total, count, ids)) ->
        let indent = String.make (2 * depth) ' ' in
        let label = indent ^ name in
        Buffer.add_string buf
          (Printf.sprintf "%-44s %10s  x%d\n" label (pretty_us total) count);
        let kids = List.concat_map children_of (List.rev ids) in
        if kids <> [] then render (depth + 1) kids)
      rows
  in
  render 0 (children_of (-1));
  Buffer.contents buf

let metrics_table (snap : Metrics.snapshot) =
  let buf = Buffer.create 512 in
  if snap.counters <> [] then begin
    Buffer.add_string buf "counters:\n";
    List.iter
      (fun (name, v) ->
        Buffer.add_string buf (Printf.sprintf "  %-40s %12d\n" name v))
      snap.counters
  end;
  if snap.gauges <> [] then begin
    Buffer.add_string buf "gauges:\n";
    List.iter
      (fun (name, v) ->
        Buffer.add_string buf (Printf.sprintf "  %-40s %12d\n" name v))
      snap.gauges
  end;
  if snap.histograms <> [] then begin
    Buffer.add_string buf "histograms:\n";
    List.iter
      (fun (name, (h : Metrics.hist_snapshot)) ->
        let mean =
          if h.count = 0 then 0.
          else float_of_int h.sum /. float_of_int h.count
        in
        Buffer.add_string buf
          (Printf.sprintf "  %-40s count=%d sum=%d mean=%.1f\n" name h.count
             h.sum mean);
        let parts = ref [] in
        Array.iteri
          (fun i c ->
            if c > 0 then
              let label =
                if i < Array.length h.bounds then
                  Printf.sprintf "le%d:%d" h.bounds.(i) c
                else Printf.sprintf "inf:%d" c
              in
              parts := label :: !parts)
          h.counts;
        if !parts <> [] then
          Buffer.add_string buf
            (Printf.sprintf "  %-40s %s\n" "" (String.concat " " (List.rev !parts))))
      snap.histograms
  end;
  Buffer.contents buf
