(** Span-based tracing: timed, named, nested regions.

    Nesting is per domain — a span opened on an Engine worker roots its
    own tree there. A body that raises still closes its span (the
    exception propagates). When {!Obs.enabled} is false, [with_] is the
    identity apart from one branch. *)

type completed = {
  id : int;
  parent : int;  (** [-1] for a root span *)
  name : string;
  domain : int;  (** id of the recording domain *)
  start_us : float;  (** wall clock, microseconds *)
  dur_us : float;
}

(** [with_ ~name f] times [f ()] as a span nested under the innermost
    open span of the calling domain. *)
val with_ : name:string -> (unit -> 'a) -> 'a

(** Completed spans in completion order. *)
val spans : unit -> completed list

(** Monotonic-enough wall clock in microseconds (gettimeofday). *)
val now_us : unit -> float

val reset : unit -> unit
