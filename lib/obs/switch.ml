(* The single global observability switch. Lives below every other obs
   module so both the recording primitives and the instrumented libraries
   can read it without a dependency cycle. Disabled is the default: every
   recording entry point reduces to one ref read and a branch. *)

let enabled = ref false
