(** Named counters, gauges and fixed-bucket histograms.

    Recording goes to a per-domain shard (no cross-domain contention);
    {!snapshot} merges shards order-independently: counters by sum,
    gauges by max, histogram buckets pointwise. All entry points are
    no-ops while {!Obs.enabled} is false. [snapshot] / [reset] should be
    called at quiescence (no Engine batch in flight) for exact totals. *)

(** Increment a counter by 1. *)
val incr : string -> unit

(** Add [v] (may be any int) to a counter. *)
val add : string -> int -> unit

(** Set a gauge. Merge across domains takes the maximum. *)
val gauge : string -> int -> unit

(** Power-of-two-ish bucket upper bounds used when [?bounds] is omitted. *)
val default_bounds : int array

(** [observe ?bounds name v] adds [v] to histogram [name]. Buckets are
    inclusive upper bounds; values above the last bound land in an
    overflow bucket. The first observation of a name fixes its bounds. *)
val observe : ?bounds:int array -> string -> int -> unit

type hist_snapshot = {
  bounds : int array;
  counts : int array;  (** length = [Array.length bounds + 1] (overflow last) *)
  sum : int;
  count : int;
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * int) list;
  histograms : (string * hist_snapshot) list;
}

val snapshot : unit -> snapshot

(** Counter value in a snapshot, 0 when absent. *)
val counter : snapshot -> string -> int

(** Clear every shard. *)
val reset : unit -> unit
