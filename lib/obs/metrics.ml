(* Sharded metrics registry.

   Each domain records into its own shard (Domain-local storage), so
   Engine workers never contend on a lock or an atomic in their hot
   loops; [snapshot] merges the shards. Counters merge by sum, gauges by
   max, histograms pointwise — all order-independent, so merged totals
   are identical whether the work ran on one domain or many.

   Every entry point is a no-op (one ref read + branch) while
   [Switch.enabled] is false. Recording is safe from any domain;
   [snapshot] and [reset] read other domains' shards without
   synchronizing against in-flight writers, so call them at quiescence
   (between Engine batches) for exact totals. *)

let default_bounds =
  [| 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024; 4096; 16384; 65536;
     262144; 1048576 |]

type hist = {
  bounds : int array; (* increasing inclusive upper bounds *)
  counts : int array; (* length bounds + 1; last bucket = overflow *)
  mutable sum : int;
  mutable count : int;
}

type shard = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, int ref) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
}

let registry_mutex = Mutex.create ()
let shards : shard list ref = ref []

let new_shard () =
  let s =
    {
      counters = Hashtbl.create 32;
      gauges = Hashtbl.create 8;
      hists = Hashtbl.create 8;
    }
  in
  Mutex.lock registry_mutex;
  shards := s :: !shards;
  Mutex.unlock registry_mutex;
  s

let shard_key : shard Domain.DLS.key = Domain.DLS.new_key new_shard
let my_shard () = Domain.DLS.get shard_key

let add name v =
  if !Switch.enabled then begin
    let s = my_shard () in
    match Hashtbl.find_opt s.counters name with
    | Some r -> r := !r + v
    | None -> Hashtbl.add s.counters name (ref v)
  end

let incr name = add name 1

let gauge name v =
  if !Switch.enabled then begin
    let s = my_shard () in
    match Hashtbl.find_opt s.gauges name with
    | Some r -> r := v
    | None -> Hashtbl.add s.gauges name (ref v)
  end

let bucket_index bounds v =
  let n = Array.length bounds in
  let rec go i = if i >= n then n else if v <= bounds.(i) then i else go (i + 1) in
  go 0

let observe ?(bounds = default_bounds) name v =
  if !Switch.enabled then begin
    let s = my_shard () in
    let h =
      match Hashtbl.find_opt s.hists name with
      | Some h -> h
      | None ->
          let h =
            { bounds; counts = Array.make (Array.length bounds + 1) 0;
              sum = 0; count = 0 }
          in
          Hashtbl.add s.hists name h;
          h
    in
    let i = bucket_index h.bounds v in
    h.counts.(i) <- h.counts.(i) + 1;
    h.sum <- h.sum + v;
    h.count <- h.count + 1
  end

(* ---------------- snapshot ---------------- *)

type hist_snapshot = {
  bounds : int array;
  counts : int array;
  sum : int;
  count : int;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * hist_snapshot) list;
}

let by_name (a, _) (b, _) = String.compare a b

let snapshot () =
  Mutex.lock registry_mutex;
  let ss = !shards in
  Mutex.unlock registry_mutex;
  let counters = Hashtbl.create 64 in
  let gauges = Hashtbl.create 16 in
  let hists : (string, hist_snapshot) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (s : shard) ->
      Hashtbl.iter
        (fun name r ->
          match Hashtbl.find_opt counters name with
          | Some acc -> Hashtbl.replace counters name (acc + !r)
          | None -> Hashtbl.add counters name !r)
        s.counters;
      Hashtbl.iter
        (fun name r ->
          match Hashtbl.find_opt gauges name with
          | Some acc -> if !r > acc then Hashtbl.replace gauges name !r
          | None -> Hashtbl.add gauges name !r)
        s.gauges;
      Hashtbl.iter
        (fun name (h : hist) ->
          match Hashtbl.find_opt hists name with
          | Some acc when Array.length acc.counts = Array.length h.counts ->
              Hashtbl.replace hists name
                {
                  acc with
                  counts = Array.mapi (fun i c -> c + h.counts.(i)) acc.counts;
                  sum = acc.sum + h.sum;
                  count = acc.count + h.count;
                }
          | Some _ -> () (* mismatched bounds for one name: first wins *)
          | None ->
              Hashtbl.add hists name
                { bounds = Array.copy h.bounds; counts = Array.copy h.counts;
                  sum = h.sum; count = h.count })
        s.hists)
    ss;
  let to_list tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  {
    counters = List.sort by_name (to_list counters);
    gauges = List.sort by_name (to_list gauges);
    histograms = List.sort by_name (to_list hists);
  }

let counter snap name =
  match List.assoc_opt name snap.counters with Some v -> v | None -> 0

let reset () =
  Mutex.lock registry_mutex;
  List.iter
    (fun (s : shard) ->
      Hashtbl.reset s.counters;
      Hashtbl.reset s.gauges;
      Hashtbl.reset s.hists)
    !shards;
  Mutex.unlock registry_mutex
