type action =
  | Off
  | Raise
  | Delay of float
  | Short_read
  | Partial_write

(* One site: the policy fields are written only under [registry_mutex]
   (configure/set/clear are control-plane calls), read without it on the
   hot path — a torn read across fields can at worst misfire during the
   reconfiguration instant, which no caller depends on. [remaining] is
   the at-most-[n] countdown and must be exact even under parallel hits,
   hence atomic. The PRNG is a splitmix64 walk guarded by its own mutex:
   probability draws are only deterministic on serial paths anyway, and
   the mutex just keeps the state from tearing. *)
type site = {
  sname : string;
  mutable action : action;
  mutable prob : float;
  remaining : int Atomic.t; (* max_int = unlimited, never decremented *)
  mutable rng : int64;
  rng_mutex : Mutex.t;
  hits : int Atomic.t;
  nfired : int Atomic.t;
}

exception Injected of string

let enabled = ref false
let registry : (string, site) Hashtbl.t = Hashtbl.create 16
let registry_mutex = Mutex.create ()

let site name =
  Mutex.lock registry_mutex;
  let s =
    match Hashtbl.find_opt registry name with
    | Some s -> s
    | None ->
        let s =
          {
            sname = name;
            action = Off;
            prob = 1.;
            remaining = Atomic.make max_int;
            rng = 0L;
            rng_mutex = Mutex.create ();
            hits = Atomic.make 0;
            nfired = Atomic.make 0;
          }
        in
        Hashtbl.add registry name s;
        s
  in
  Mutex.unlock registry_mutex;
  s

let name s = s.sname

let all () =
  Mutex.lock registry_mutex;
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) registry [] in
  Mutex.unlock registry_mutex;
  List.sort String.compare names

(* splitmix64 step: full 64-bit period, every seed (including 0) walks a
   distinct deterministic sequence. *)
let splitmix x =
  let x = Int64.add x 0x9E3779B97F4A7C15L in
  let z = Int64.mul (Int64.logxor x (Int64.shift_right_logical x 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let draw s =
  if s.prob >= 1. then true
  else begin
    Mutex.lock s.rng_mutex;
    s.rng <- splitmix s.rng;
    let u =
      Int64.to_float (Int64.shift_right_logical s.rng 11) /. 9007199254740992.
    in
    Mutex.unlock s.rng_mutex;
    u < s.prob
  end

(* Claim one firing slot; the [max_int] sentinel (unlimited) is never
   decremented, so an exhausted countdown wobbling around zero can never
   be mistaken for it. *)
let take s =
  if Atomic.get s.remaining = max_int then true
  else if Atomic.fetch_and_add s.remaining (-1) > 0 then true
  else begin
    (* exhausted (or lost the race): undo the decrement so the counter
       does not wander ever further negative under heavy hitting *)
    ignore (Atomic.fetch_and_add s.remaining 1);
    false
  end

let record_fire s =
  Atomic.incr s.nfired;
  if !Switch.enabled then Metrics.incr "failpoint.fired"

let hit s =
  if !enabled then begin
    Atomic.incr s.hits;
    if !Switch.enabled then Metrics.incr "failpoint.hits";
    match s.action with
    | Off | Short_read | Partial_write -> ()
    | Raise ->
        if draw s && take s then begin
          record_fire s;
          raise (Injected s.sname)
        end
    | Delay ms ->
        if draw s && take s then begin
          record_fire s;
          Unix.sleepf (ms /. 1000.)
        end
  end

let clamp s n =
  if (not !enabled) || n <= 1 then n
  else begin
    Atomic.incr s.hits;
    if !Switch.enabled then Metrics.incr "failpoint.hits";
    match s.action with
    | Short_read when draw s && take s ->
        record_fire s;
        1
    | Partial_write when draw s && take s ->
        record_fire s;
        max 1 (n / 2)
    | Off | Raise | Delay _ | Short_read | Partial_write -> n
  end

let set nm ?(p = 1.) ?n ?(seed = 0) action =
  if p < 0. || p > 1. then
    invalid_arg "Failpoint.set: p must be within 0..1";
  (match n with
  | Some n when n < 0 -> invalid_arg "Failpoint.set: n must be >= 0"
  | _ -> ());
  let s = site nm in
  Mutex.lock registry_mutex;
  s.action <- action;
  s.prob <- p;
  Atomic.set s.remaining (match n with None -> max_int | Some n -> n);
  s.rng <- Int64.of_int seed;
  Mutex.unlock registry_mutex;
  enabled := true

let clear () =
  enabled := false;
  Mutex.lock registry_mutex;
  Hashtbl.iter
    (fun _ s ->
      s.action <- Off;
      s.prob <- 1.;
      Atomic.set s.remaining max_int;
      s.rng <- 0L;
      Atomic.set s.hits 0;
      Atomic.set s.nfired 0)
    registry;
  Mutex.unlock registry_mutex

let fired s = Atomic.get s.nfired

let stats () =
  Mutex.lock registry_mutex;
  let rows =
    Hashtbl.fold
      (fun k s acc -> (k, Atomic.get s.hits, Atomic.get s.nfired) :: acc)
      registry []
  in
  Mutex.unlock registry_mutex;
  List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) rows

(* ---- spec parsing ---- *)

let fail fmt = Printf.ksprintf invalid_arg fmt

let parse_action spec = function
  | "off" -> Off
  | "raise" -> Raise
  | "short_read" -> Short_read
  | "partial_write" -> Partial_write
  | a when String.length a > 6 && String.sub a 0 6 = "delay:" -> (
      let ms = String.sub a 6 (String.length a - 6) in
      match float_of_string_opt ms with
      | Some ms when ms >= 0. -> Delay ms
      | _ -> fail "Failpoint.configure: bad delay %S in %S" ms spec)
  | a -> fail "Failpoint.configure: unknown action %S in %S" a spec

let configure spec =
  let entries =
    List.filter (fun s -> String.trim s <> "") (String.split_on_char ';' spec)
  in
  let parsed =
    List.map
      (fun entry ->
        let entry = String.trim entry in
        match String.index_opt entry '=' with
        | None -> fail "Failpoint.configure: missing '=' in %S" entry
        | Some i ->
            let nm = String.trim (String.sub entry 0 i) in
            if nm = "" then fail "Failpoint.configure: empty site in %S" entry;
            let rhs =
              String.sub entry (i + 1) (String.length entry - i - 1)
            in
            (match String.split_on_char ',' rhs with
            | [] -> fail "Failpoint.configure: empty action in %S" entry
            | action :: opts ->
                let action = parse_action entry (String.trim action) in
                let p = ref 1. and n = ref None and seed = ref 0 in
                List.iter
                  (fun opt ->
                    let opt = String.trim opt in
                    match String.index_opt opt '=' with
                    | None ->
                        fail "Failpoint.configure: bad option %S in %S" opt
                          entry
                    | Some j -> (
                        let k = String.sub opt 0 j in
                        let v =
                          String.sub opt (j + 1) (String.length opt - j - 1)
                        in
                        match (k, float_of_string_opt v) with
                        | "p", Some f -> p := f
                        | "n", Some f -> n := Some (int_of_float f)
                        | "seed", Some f -> seed := int_of_float f
                        | _ ->
                            fail "Failpoint.configure: bad option %S in %S"
                              opt entry))
                  opts;
                (nm, action, !p, !n, !seed)))
      entries
  in
  (* arm only after the whole spec parsed, so a malformed tail does not
     leave a half-configured schedule behind *)
  List.iter (fun (nm, action, p, n, seed) -> set nm ~p ?n ~seed action) parsed;
  enabled := true
