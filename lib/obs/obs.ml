(* Umbrella module: the stable entry point for instrumented libraries
   ([Obs.enabled], [Obs.Metrics], [Obs.Span]) and consumers of the
   collected data ([Obs.Export], [Obs.Json]). *)

module Json = Jsonx
module Metrics = Metrics
module Span = Span
module Export = Export
module Clock = Clock
module Failpoint = Failpoint

let enabled = Switch.enabled
let now_us = Span.now_us

let reset () =
  Metrics.reset ();
  Span.reset ()

let with_enabled f =
  let prev = !enabled in
  enabled := true;
  Fun.protect ~finally:(fun () -> enabled := prev) f
