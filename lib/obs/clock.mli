(** Monotonic time, the one clock every latency measurement goes through.

    [Unix.gettimeofday] steps when NTP adjusts the system clock, so a
    daemon timing requests against it misreports latency (negative
    durations across a backwards step, inflated ones across a forward
    step) and a deadline armed against it can expire early or never.
    These helpers read [CLOCK_MONOTONIC] via a tiny C primitive; the
    origin is arbitrary (boot time on Linux), so only differences are
    meaningful — never compare against wall-clock timestamps. *)

(** [now_s ()] is the monotonic clock in seconds. *)
val now_s : unit -> float

(** [now_us ()] is the monotonic clock in microseconds. *)
val now_us : unit -> float
