type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Non-finite floats have no JSON spelling; integers print without the
   fraction so goldens stay readable. Everything else gets fixed-point
   with enough digits for microsecond timestamps within a run. *)
let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    let s =
      if Float.is_integer f && Float.abs f < 1e15 then
        Printf.sprintf "%.0f" f
      else Printf.sprintf "%.6f" f
    in
    (* negative zero (exact, or tiny values rounded to it) re-parses as
       zero, so print it unsigned to keep print/parse idempotent *)
    match s with "-0" -> "0" | "-0.000000" -> "0.000000" | _ -> s

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

let to_channel oc v =
  output_string oc (to_string v);
  output_char oc '\n'

let write_file path v =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel oc v)

(* ------------------------------------------------------------------ *)
(* Strict recursive-descent parser (RFC 8259). One value per string;
   anything but whitespace after it is an error. Kept hand-rolled for
   the same reason as the printer: the serve protocol must not pull in
   a JSON dependency. *)

type error = { offset : int; message : string }

let error_to_string e =
  Printf.sprintf "%s at byte %d" e.message e.offset

exception Fail of error

let fail offset message = raise (Fail { offset; message })

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  let n = String.length st.src in
  while
    st.pos < n
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some d when d = c -> st.pos <- st.pos + 1
  | _ -> fail st.pos (Printf.sprintf "expected '%c'" c)

let literal st word v =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    v
  end
  else fail st.pos (Printf.sprintf "expected '%s'" word)

let hex_digit st =
  let c = match peek st with Some c -> c | None -> fail st.pos "expected hex digit" in
  st.pos <- st.pos + 1;
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> fail (st.pos - 1) "expected hex digit"

let hex4 st =
  let a = hex_digit st in
  let b = hex_digit st in
  let c = hex_digit st in
  let d = hex_digit st in
  (a lsl 12) lor (b lsl 8) lor (c lsl 4) lor d

(* UTF-8 encode one scalar value (escape decoding only reaches U+10FFFF). *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st.pos "unterminated string"
    | Some '"' ->
        st.pos <- st.pos + 1;
        Buffer.contents buf
    | Some '\\' -> (
        st.pos <- st.pos + 1;
        match peek st with
        | None -> fail st.pos "unterminated escape"
        | Some c ->
            st.pos <- st.pos + 1;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                let u = hex4 st in
                if u >= 0xD800 && u <= 0xDBFF then begin
                  (* high surrogate: require the paired \uXXXX low half *)
                  let at = st.pos in
                  if
                    st.pos + 1 < String.length st.src
                    && st.src.[st.pos] = '\\'
                    && st.src.[st.pos + 1] = 'u'
                  then begin
                    st.pos <- st.pos + 2;
                    let lo = hex4 st in
                    if lo >= 0xDC00 && lo <= 0xDFFF then
                      add_utf8 buf
                        (0x10000
                        + ((u - 0xD800) lsl 10)
                        + (lo - 0xDC00))
                    else fail at "expected low surrogate"
                  end
                  else fail at "expected low surrogate"
                end
                else if u >= 0xDC00 && u <= 0xDFFF then
                  fail (st.pos - 4) "unpaired low surrogate"
                else add_utf8 buf u
            | _ -> fail (st.pos - 1) "invalid escape");
            go ())
    | Some c when Char.code c < 0x20 ->
        fail st.pos "unescaped control character in string"
    | Some c ->
        st.pos <- st.pos + 1;
        Buffer.add_char buf c;
        go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_digit () =
    match peek st with Some '0' .. '9' -> true | _ -> false
  in
  if peek st = Some '-' then st.pos <- st.pos + 1;
  (* integer part: 0 | [1-9][0-9]* *)
  (match peek st with
  | Some '0' -> st.pos <- st.pos + 1
  | Some '1' .. '9' -> while is_digit () do st.pos <- st.pos + 1 done
  | _ -> fail st.pos "expected digit");
  let is_int = ref true in
  if peek st = Some '.' then begin
    is_int := false;
    st.pos <- st.pos + 1;
    if not (is_digit ()) then fail st.pos "expected digit after '.'";
    while is_digit () do st.pos <- st.pos + 1 done
  end;
  (match peek st with
  | Some ('e' | 'E') ->
      is_int := false;
      st.pos <- st.pos + 1;
      (match peek st with
      | Some ('+' | '-') -> st.pos <- st.pos + 1
      | _ -> ());
      if not (is_digit ()) then fail st.pos "expected digit in exponent";
      while is_digit () do st.pos <- st.pos + 1 done
  | _ -> ());
  let text = String.sub st.src start (st.pos - start) in
  if !is_int then
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> Float (float_of_string text) (* out of int range *)
  else Float (float_of_string text)

(* Containers deeper than this fail with a typed error instead of
   exhausting the OCaml stack: the recursive-descent parser recurses
   once per nesting level, and a hostile line of "[[[[…" would
   otherwise turn into [Stack_overflow] — an untyped crash — inside
   whatever daemon called [parse]. 512 is far beyond any legitimate
   request or metrics document. *)
let max_depth = 512

let rec parse_value depth st =
  if depth > max_depth then
    fail st.pos (Printf.sprintf "nesting deeper than %d" max_depth);
  skip_ws st;
  match peek st with
  | None -> fail st.pos "expected value"
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value (depth + 1) st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              fields ((k, v) :: acc)
          | Some '}' ->
              st.pos <- st.pos + 1;
              List.rev ((k, v) :: acc)
          | _ -> fail st.pos "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value (depth + 1) st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              items (v :: acc)
          | Some ']' ->
              st.pos <- st.pos + 1;
              List.rev (v :: acc)
          | _ -> fail st.pos "expected ',' or ']'"
        in
        List (items [])
      end
  | Some '"' -> String (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some _ -> fail st.pos "expected value"

let parse s =
  let st = { src = s; pos = 0 } in
  match
    let v = parse_value 0 st in
    skip_ws st;
    if st.pos <> String.length s then fail st.pos "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail e -> Error e
