/* Monotonic clock primitive for Obs.Clock.

   The OCaml Unix library only exposes gettimeofday, which steps under
   NTP adjustment and breaks latency measurement in a long-lived daemon;
   CLOCK_MONOTONIC is immune. Returned as a double of seconds since an
   arbitrary epoch — only differences are meaningful. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>

#if defined(_WIN32)
#include <windows.h>

CAMLprim value pimsched_monotonic_s(value unit)
{
  static double freq = 0.0;
  LARGE_INTEGER t;
  if (freq == 0.0) {
    LARGE_INTEGER f;
    QueryPerformanceFrequency(&f);
    freq = (double)f.QuadPart;
  }
  QueryPerformanceCounter(&t);
  return caml_copy_double((double)t.QuadPart / freq);
}

#else
#include <time.h>

CAMLprim value pimsched_monotonic_s(value unit)
{
  struct timespec ts;
#if defined(CLOCK_MONOTONIC)
  clock_gettime(CLOCK_MONOTONIC, &ts);
#else
  clock_gettime(CLOCK_REALTIME, &ts);
#endif
  return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9);
}

#endif
