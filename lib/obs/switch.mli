(** Global observability switch (see {!Obs.enabled}). *)

val enabled : bool ref
