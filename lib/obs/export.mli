(** Stable exports of metrics snapshots and span logs. *)

(** JSON object tagged ["schema": "pim-sched-metrics/1"]; [extra]
    fields (e.g. instance description, wall time) are spliced in after
    the schema tag. *)
val metrics_json : ?extra:(string * Jsonx.t) list -> Metrics.snapshot -> Jsonx.t

(** Chrome [trace_event] JSON (complete "X" events, timestamps re-based
    to the earliest span). Loadable in chrome://tracing / Perfetto. *)
val chrome_trace : Span.completed list -> Jsonx.t

(** Plain-text span tree: siblings aggregated by name with total time
    and call count, heaviest first. *)
val flame_summary : Span.completed list -> string

(** Aligned plain-text rendering of a metrics snapshot. *)
val metrics_table : Metrics.snapshot -> string
