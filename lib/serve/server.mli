(** The long-lived scheduling daemon behind [pimsched serve].

    One server owns a cache of shared immutable {!Sched.Context.t}s keyed
    by instance (mesh, trace source, capacity policy, kernel) and answers
    {!Protocol} requests. Each solve runs a private request-scoped
    session over the cached context, so thousands of requests on one
    instance reuse the axis tables and trace preprocessing while never
    sharing a mutable slab. The last session solved per context is kept
    warm: a repeat instance — even under a different fault — checks it
    out and patches it ({!Sched.Problem.with_fault_patch}), refilling
    only the slab rows the fault change repriced, instead of opening a
    cold {!Sched.Problem.of_context} session. Request waves fan out
    across the {!Sched.Engine} domain pool; responses depend only on the
    request — never on batching, wave boundaries, warm-session reuse or
    [jobs] — so a served answer is byte-identical to the one-shot CLI
    solve.

    Admission control is by arena footprint: a request whose context
    would need more than [max_arena_bytes] cost-arena bytes if fully
    forced ({!Sched.Context.t.max_arena_bytes}) is rejected with code
    [over-budget] before any slab is allocated.

    Obs metrics (when {!Obs.enabled}): [serve.requests], [serve.errors],
    [serve.rejected], [serve.batches], [serve.context_hits],
    [serve.context_misses], [serve.memo_hits], [serve.warm_sessions],
    histogram [serve.solve_us]. *)

type config = {
  jobs : int;  (** domain pool size for waves and within sessions *)
  batch : int;  (** max requests answered per wave *)
  max_arena_bytes : int option;  (** admission budget; [None] = unlimited *)
  memo : bool;  (** cache responses by raw request line *)
}

(** Machine-fitted jobs, batch 16, no budget, memo on. *)
val default_config : unit -> config

type t

(** @raise Invalid_argument if [jobs < 1] or [batch < 1]. *)
val create : ?config:config -> unit -> t

(** [process_batch t lines] answers one wave of request lines, in request
    order, fanning solves out on the domain pool. Each response is paired
    with its solve latency in seconds ([0.] for non-solve ops). *)
val process_batch : t -> string list -> (string * float) list

(** [handle_line t line] is a one-request wave. *)
val handle_line : t -> string -> string

(** [stopping t] is true once a shutdown op has been answered. *)
val stopping : t -> bool

(** [stats_json t] is the same object a [stats] op returns. *)
val stats_json : t -> Obs.Json.t

(** [run t ~input oc] is the daemon loop: block for a request line on the
    raw [input] fd, greedily drain whatever else has already arrived (up
    to [config.batch]), answer the wave in order, flush, repeat. Returns
    on end of input or after answering a [shutdown] op. *)
val run : t -> input:Unix.file_descr -> out_channel -> unit
