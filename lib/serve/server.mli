(** The long-lived scheduling daemon behind [pimsched serve].

    One server owns a cache of shared immutable {!Sched.Context.t}s keyed
    by instance (mesh, trace source, capacity policy, kernel) and answers
    {!Protocol} requests. Each solve runs a private request-scoped
    session over the cached context, so thousands of requests on one
    instance reuse the axis tables and trace preprocessing while never
    sharing a mutable slab. The last session solved per context is kept
    warm: a repeat instance — even under a different fault — checks it
    out and patches it ({!Sched.Problem.with_fault_patch}), refilling
    only the slab rows the fault change repriced, instead of opening a
    cold {!Sched.Problem.of_context} session. Request waves fan out
    across the {!Sched.Engine} domain pool; responses depend only on the
    request — never on batching, wave boundaries, warm-session reuse or
    [jobs] — so a served answer is byte-identical to the one-shot CLI
    solve.

    {2 Hardening}

    The server assumes hostile traffic:

    - {b Admission by arena footprint}: a request whose context would
      need more than [max_arena_bytes] cost-arena bytes if fully forced
      ({!Sched.Context.t.max_arena_bytes}) is rejected with code
      [over-budget] before any slab is allocated.
    - {b Deadlines}: a solve carrying [deadline_ms] is checked at
      admission, at wave start and at per-datum poll points inside the
      solve ({!Sched.Cancel}); expiry answers a typed
      [deadline-exceeded].
    - {b Bounded caches}: contexts, response memo and warm sessions live
      in byte-accounted {!Lru} caches sharing [max_cache_bytes]
      (contexts 1/2, warm sessions 3/8, memo 1/8); evicting a context
      cascades to its warm session.
    - {b Overload shedding}: buffered backlog beyond [max_queue] lines
      is answered [overloaded] (with a [retry_after_ms] hint) without
      being decoded or solved.
    - {b Line cap}: a request line over [max_line_bytes] is discarded as
      it streams in (bounded buffer) and answered with a typed
      [parse-error].
    - {b Crash isolation}: an exception escaping one request's admission
      or solve becomes a typed [internal-error] (with a backtrace) for
      that request only; a wave poisoned at the engine's task boundary
      is re-run serially. The daemon survives.
    - {b Slow readers}: responses are written with a per-response
      [write_timeout_ms] budget; a stalled or vanished client
      (EPIPE/ECONNRESET/timeout) ends the daemon loop cleanly. SIGPIPE
      is ignored.
    - {b Failpoints}: the request path is instrumented with
      {!Obs.Failpoint} sites [serve.read], [serve.decode],
      [serve.solve], [serve.write] (plus [engine.task] underneath) —
      no-ops unless a chaos schedule is armed.

    Obs metrics (when {!Obs.enabled}): [serve.requests], [serve.errors],
    [serve.rejected], [serve.batches], [serve.context_hits],
    [serve.context_misses], [serve.memo_hits], [serve.warm_sessions],
    [serve.overloaded], [serve.deadline_exceeded], [serve.task_crashes],
    [serve.line_overflows], [serve.wave_retries],
    [serve.cache_evictions], [serve.client_gone], histogram
    [serve.solve_us]. *)

type config = {
  jobs : int;  (** domain pool size for waves and within sessions *)
  batch : int;  (** max requests answered per wave *)
  max_arena_bytes : int option;  (** admission budget; [None] = unlimited *)
  memo : bool;  (** cache responses by raw request line *)
  max_cache_bytes : int;
      (** byte budget shared by the context, memo and warm-session
          caches; [0] disables caching entirely *)
  max_line_bytes : int;  (** request line cap; longer lines are rejected *)
  max_queue : int;
      (** buffered request lines tolerated beyond the current wave;
          excess is shed with [overloaded] *)
  write_timeout_ms : float;
      (** per-response write budget before a slow reader is dropped *)
}

(** Machine-fitted jobs, batch 16, no arena budget, memo on, 256 MiB
    cache budget, 4 MiB line cap, queue 1024, 5 s write timeout. *)
val default_config : unit -> config

type t

(** @raise Invalid_argument on a non-positive [jobs], [batch],
    [max_line_bytes] or [write_timeout_ms], or a negative
    [max_cache_bytes] or [max_queue]. *)
val create : ?config:config -> unit -> t

(** [process_batch t lines] answers one wave of request lines, in request
    order, fanning solves out on the domain pool. Each response is paired
    with its solve latency in seconds ([0.] for non-solve ops). *)
val process_batch : t -> string list -> (string * float) list

(** [handle_line t line] is a one-request wave. *)
val handle_line : t -> string -> string

(** [stopping t] is true once a shutdown op has been answered. *)
val stopping : t -> bool

(** [stats_json t] is the same object a [stats] op returns. *)
val stats_json : t -> Obs.Json.t

(** [run t ~input ~output] is the daemon loop: block for a request line
    on the raw [input] fd, greedily drain whatever else has already
    arrived (up to [config.batch]), shed backlog beyond [max_queue],
    answer the wave in order, write the response lines to [output],
    repeat. Returns on end of input, after answering a [shutdown] op
    (draining the in-flight wave first), or when the client stops
    reading responses. [output] is put in non-blocking mode for the
    duration of the call (restored on return). *)
val run : t -> input:Unix.file_descr -> output:Unix.file_descr -> unit
