(* Hashtbl for lookup, intrusive doubly-linked list for recency order
   (head = most recent). Option links keep the node type total — no
   sentinel value of type ['a] has to be conjured. *)

type 'a node = {
  key : string;
  value : 'a;
  nbytes : int;
  mutable prev : 'a node option; (* towards the head (more recent) *)
  mutable next : 'a node option; (* towards the tail (less recent) *)
}

type 'a t = {
  tbl : (string, 'a node) Hashtbl.t;
  budget : int;
  mutable head : 'a node option;
  mutable tail : 'a node option;
  mutable used : int;
  mutable evicted : int;
}

let create ~budget =
  { tbl = Hashtbl.create 64; budget; head = None; tail = None;
    used = 0; evicted = 0 }

let budget t = t.budget
let used_bytes t = t.used
let length t = Hashtbl.length t.tbl
let evictions t = t.evicted

let unlink t n =
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> t.head <- n.next);
  (match n.next with
  | Some s -> s.prev <- n.prev
  | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> None
  | Some n ->
      unlink t n;
      push_front t n;
      Some n.value

let peek t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> None
  | Some n -> Some n.value

let mem t key = Hashtbl.mem t.tbl key

let drop t n =
  unlink t n;
  Hashtbl.remove t.tbl n.key;
  t.used <- t.used - n.nbytes

let remove t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> ()
  | Some n -> drop t n

let add t key v ~bytes =
  if bytes < 0 then invalid_arg "Lru.add: negative byte weight";
  remove t key;
  if bytes > t.budget then []
  else begin
    let n = { key; value = v; nbytes = bytes; prev = None; next = None } in
    Hashtbl.replace t.tbl key n;
    push_front t n;
    t.used <- t.used + bytes;
    let rec evict acc =
      if t.used <= t.budget then List.rev acc
      else
        match t.tail with
        | None -> List.rev acc (* unreachable: used > budget implies entries *)
        | Some victim ->
            drop t victim;
            t.evicted <- t.evicted + 1;
            evict ((victim.key, victim.value) :: acc)
    in
    evict []
  end

let iter f t =
  let rec go = function
    | None -> ()
    | Some n ->
        f n.key n.value;
        go n.next
  in
  go t.head
