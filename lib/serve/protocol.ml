let version = "pim-sched-serve/1"

type mesh_spec = { rows : int; cols : int; torus : bool }

type fault_spec =
  | Fault_explicit of {
      dead_arrays : int list;
      dead_nodes : int list;
      dead_links : (int * int) list;
    }
  | Fault_seeded of {
      seed : int;
      array_rate : float;
      node_rate : float;
      link_rate : float;
    }

type instance = {
  workload : string;
  trace_text : string option;
  size : int;
  partition : string;
  mesh : mesh_spec;
  arrays : string option;
  inter_cost : int;
  unbounded : bool;
  kernel : Sched.Problem.kernel;
}

type op =
  | Solve of {
      instance : instance;
      algorithm : string;
      fault : fault_spec option;
      timed : Pim.Link_model.t option;
      deadline_ms : int option;
    }
  | Ping
  | Stats
  | Shutdown

type request = { id : Obs.Json.t; op : op }

type error = {
  code : string;
  message : string;
  offset : int option;
  extra : (string * Obs.Json.t) list;
}

let make_error ?offset ?(extra = []) code message =
  { code; message; offset; extra }

let bad ?offset message = make_error ?offset "bad-request" message

exception Reject of error

let reject ?offset message = raise (Reject (bad ?offset message))

(* ---- field accessors over a decoded object ---- *)

let field fields k = List.assoc_opt k fields

let get_string fields k ~default =
  match field fields k with
  | None -> default
  | Some (Obs.Json.String s) -> s
  | Some _ -> reject (Printf.sprintf "field %S must be a string" k)

let get_opt_string fields k =
  match field fields k with
  | None -> None
  | Some (Obs.Json.String s) -> Some s
  | Some _ -> reject (Printf.sprintf "field %S must be a string" k)

let get_int fields k ~default =
  match field fields k with
  | None -> default
  | Some (Obs.Json.Int i) -> i
  | Some _ -> reject (Printf.sprintf "field %S must be an integer" k)

let get_bool fields k ~default =
  match field fields k with
  | None -> default
  | Some (Obs.Json.Bool b) -> b
  | Some _ -> reject (Printf.sprintf "field %S must be a boolean" k)

let get_float fields k ~default =
  match field fields k with
  | None -> default
  | Some (Obs.Json.Float f) -> f
  | Some (Obs.Json.Int i) -> float_of_int i
  | Some _ -> reject (Printf.sprintf "field %S must be a number" k)

let get_obj fields k =
  match field fields k with
  | None -> None
  | Some (Obs.Json.Obj o) -> Some o
  | Some _ -> reject (Printf.sprintf "field %S must be an object" k)

let get_int_list fields k =
  match field fields k with
  | None -> []
  | Some (Obs.Json.List xs) ->
      List.map
        (function
          | Obs.Json.Int i -> i
          | _ -> reject (Printf.sprintf "field %S must hold integers" k))
        xs
  | Some _ -> reject (Printf.sprintf "field %S must be a list" k)

let get_pair_list fields k =
  match field fields k with
  | None -> []
  | Some (Obs.Json.List xs) ->
      List.map
        (function
          | Obs.Json.List [ Obs.Json.Int a; Obs.Json.Int b ] -> (a, b)
          | _ ->
              reject
                (Printf.sprintf "field %S must hold [src,dst] pairs" k))
        xs
  | Some _ -> reject (Printf.sprintf "field %S must be a list" k)

(* ---- request decoding ---- *)

let decode_mesh fields =
  match get_obj fields "mesh" with
  | None -> { rows = 4; cols = 4; torus = false }
  | Some m ->
      let rows = get_int m "rows" ~default:4 in
      let cols = get_int m "cols" ~default:4 in
      if rows < 1 || cols < 1 then reject "mesh shape must be positive";
      { rows; cols; torus = get_bool m "torus" ~default:false }

let decode_kernel fields =
  match get_string fields "kernel" ~default:"separable" with
  | "separable" -> `Separable
  | "naive" -> `Naive
  | s ->
      reject
        (Printf.sprintf "unknown kernel %S (expected separable or naive)" s)

let decode_fault fields =
  match get_obj fields "fault" with
  | None -> None
  | Some f ->
      if field f "seed" <> None then
        Some
          (Fault_seeded
             {
               seed = get_int f "seed" ~default:0;
               array_rate = get_float f "array_rate" ~default:0.;
               node_rate = get_float f "node_rate" ~default:0.;
               link_rate = get_float f "link_rate" ~default:0.;
             })
      else
        Some
          (Fault_explicit
             {
               dead_arrays = get_int_list f "dead_arrays";
               dead_nodes = get_int_list f "dead_nodes";
               dead_links = get_pair_list f "dead_links";
             })

let decode_link_model fields =
  if not (get_bool fields "timed" ~default:false) then None
  else
    let m =
      match get_obj fields "link_model" with None -> [] | Some o -> o
    in
    let queue_depth =
      match field m "queue_depth" with
      | None | Some Obs.Json.Null -> None
      | Some (Obs.Json.Int i) -> Some i
      | Some _ -> reject "field \"queue_depth\" must be an integer"
    in
    match
      Pim.Link_model.create
        ~bandwidth:(get_int m "bandwidth" ~default:1)
        ~flit:(get_int m "flit" ~default:1)
        ~wormhole:(get_bool m "wormhole" ~default:false)
        ?queue_depth
        ~compute_cycles:(get_int m "compute_cycles" ~default:0)
        ()
    with
    | model -> Some model
    | exception Invalid_argument m -> reject m

let decode_instance fields =
  let trace_text = get_opt_string fields "trace" in
  let workload = get_string fields "workload" ~default:"1" in
  let size = get_int fields "size" ~default:8 in
  if size < 1 then reject "field \"size\" must be positive";
  let inter_cost = get_int fields "inter_cost" ~default:10 in
  if inter_cost < 1 then reject "field \"inter_cost\" must be >= 1";
  {
    workload;
    trace_text;
    size;
    partition = get_string fields "partition" ~default:"block-2d";
    mesh = decode_mesh fields;
    arrays = get_opt_string fields "arrays";
    inter_cost;
    unbounded = get_bool fields "unbounded" ~default:false;
    kernel = decode_kernel fields;
  }

let decode_deadline fields =
  match field fields "deadline_ms" with
  | None | Some Obs.Json.Null -> None
  | Some (Obs.Json.Int ms) ->
      if ms < 0 then reject "field \"deadline_ms\" must be >= 0";
      Some ms
  | Some _ -> reject "field \"deadline_ms\" must be an integer"

let decode line =
  match Obs.Json.parse line with
  | Error e ->
      Error
        ( Obs.Json.Null,
          make_error ~offset:e.Obs.Json.offset "parse-error"
            e.Obs.Json.message )
  | Ok (Obs.Json.Obj fields) -> (
      let id =
        match field fields "id" with Some v -> v | None -> Obs.Json.Null
      in
      match
        match get_string fields "op" ~default:"solve" with
        | "solve" ->
            Solve
              {
                instance = decode_instance fields;
                algorithm = get_string fields "algorithm" ~default:"gomcds";
                fault = decode_fault fields;
                timed = decode_link_model fields;
                deadline_ms = decode_deadline fields;
              }
        | "ping" -> Ping
        | "stats" -> Stats
        | "shutdown" -> Shutdown
        | s -> reject (Printf.sprintf "unknown op %S" s)
      with
      | op -> Ok { id; op }
      | exception Reject e -> Error (id, e))
  | Ok _ ->
      Error (Obs.Json.Null, bad "request must be a JSON object")

(* ---- response encoding ---- *)

let ok_response id result =
  Obs.Json.to_string
    (Obs.Json.Obj
       [
         ("id", id); ("ok", Obs.Json.Bool true); ("result", Obs.Json.Obj result);
       ])

let request_id line =
  match Obs.Json.parse line with
  | Ok (Obs.Json.Obj fields) -> (
      match field fields "id" with Some v -> v | None -> Obs.Json.Null)
  | Ok _ | Error _ -> Obs.Json.Null

let error_response id (e : error) =
  let fields =
    [
      ("code", Obs.Json.String e.code);
      ("message", Obs.Json.String e.message);
    ]
    @ (match e.offset with
      | None -> []
      | Some o -> [ ("offset", Obs.Json.Int o) ])
    @ e.extra
  in
  Obs.Json.to_string
    (Obs.Json.Obj
       [
         ("id", id);
         ("ok", Obs.Json.Bool false);
         ("error", Obs.Json.Obj fields);
       ])
