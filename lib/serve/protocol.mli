(** The [pim-sched-serve/1] wire protocol: line-delimited JSON.

    Each request is one JSON object on one line; each response is one JSON
    object on one line, in request order. A request carries an [id]
    (echoed verbatim in the response — any JSON value) and an [op]:

    - ["solve"] (the default): schedule one instance. Instance fields
      mirror the CLI: [workload]/[size]/[partition] name a generated
      workload, or [trace] carries an inline {!Reftrace.Serial} v1 text;
      [mesh] is [{"rows":R,"cols":C,"torus":bool}]; [unbounded] lifts the
      paper's headroom-2 capacity; [algorithm] and [kernel] are the CLI
      spellings; [fault] is either [{"dead_arrays":[...],
      "dead_nodes":[...], "dead_links":[[a,b],...]}] or [{"seed":s,
      "array_rate":f, "node_rate":f, "link_rate":f}]. An [arrays] group
      spec ("2x2of8x8" or "8x8,4x4", {!Multi.Array_group.of_spec})
      switches the instance to the multi-array tier: [mesh] is ignored
      except that [torus] wraps the members, [inter_cost] prices a
      fabric hop (default 10), inline traces reference {e global} ranks,
      generated workloads are laid out on the group's virtual mesh, and
      the [dead_arrays]/[array_rate] fault fields come alive (they are
      rejected on single-mesh instances). Setting ["timed":true] replays
      the solved schedule through {!Pim.Timed_simulator} and adds a
      [timed] object to the result (cycles, volume_hops,
      link_utilization, bandwidth_idle, queue_stall_cycles, compute_idle,
      energy); an optional [link_model] object ([{"bandwidth":b,
      "flit":f, "wormhole":bool, "queue_depth":d?, "compute_cycles":c}],
      every field defaulted to the degenerate unit-bandwidth
      store-and-forward model) parameterizes the replay. Timed replay is
      single-mesh only — it is rejected on [arrays] group instances.
    - ["ping"] — liveness probe, returns the protocol version.
    - ["stats"] — server counters.
    - ["shutdown"] — acknowledge and stop the daemon after this batch.

    A solve response's [result] holds the algorithm name, the cost
    breakdown ([total]/[reference]/[movement]/[moves]) and [plan], the
    {!Sched.Schedule_serial} v1 text — byte-identical to what the
    one-shot CLI writes with [--plan-out]. Group solves add [arrays]
    (member count) and [array_moves], and their [plan] is the
    {!Multi.Group_serial} group-plan text. Failures come back as
    [{"id":..,"ok":false,"error":{"code","message","offset"?,...}}] with
    codes [parse-error], [bad-request], [over-budget], [solve-error],
    [deadline-exceeded] (the request's [deadline_ms] budget ran out — at
    admission or at a cooperative poll inside the solve),
    [overloaded] (admission shed the request; the error carries a
    [retry_after_ms] hint) or [internal-error] (a crash inside one solve
    task, isolated to that request; the error carries a [backtrace]).

    A solve request may carry ["deadline_ms": B]: the server arms a
    monotonic-clock budget of [B] milliseconds, checked at admission, at
    batch-wave start and at per-datum poll points inside the solve
    ({!Sched.Cancel}). [0] expires immediately — the cheap way to probe
    the typed rejection. *)

val version : string

type mesh_spec = { rows : int; cols : int; torus : bool }

type fault_spec =
  | Fault_explicit of {
      dead_arrays : int list;  (** member indices; group instances only *)
      dead_nodes : int list;
      dead_links : (int * int) list;
    }
  | Fault_seeded of {
      seed : int;
      array_rate : float;  (** whole-array rate; group instances only *)
      node_rate : float;
      link_rate : float;
    }

type instance = {
  workload : string;  (** CLI workload spelling; ignored with [trace_text] *)
  trace_text : string option;  (** inline {!Reftrace.Serial} v1 text *)
  size : int;
  partition : string;
  mesh : mesh_spec;
  arrays : string option;  (** {!Multi.Array_group.of_spec} group spec *)
  inter_cost : int;  (** fabric hop price; group instances only *)
  unbounded : bool;
  kernel : Sched.Problem.kernel;
}

type op =
  | Solve of {
      instance : instance;
      algorithm : string;
      fault : fault_spec option;
      timed : Pim.Link_model.t option;
          (** [Some model] replays the schedule through
              {!Pim.Timed_simulator.run} with that link model and adds a
              [timed] result object; single-mesh instances only *)
      deadline_ms : int option;
          (** latency budget from request arrival, monotonic clock *)
    }
  | Ping
  | Stats
  | Shutdown

type request = { id : Obs.Json.t; op : op }

type error = {
  code : string;
  message : string;
  offset : int option;
  extra : (string * Obs.Json.t) list;
      (** code-specific payload fields appended to the error object
          (e.g. [retry_after_ms] on [overloaded], [backtrace] on
          [internal-error]) *)
}

val make_error :
  ?offset:int -> ?extra:(string * Obs.Json.t) list -> string -> string -> error
(** [make_error code message] is an error with any code. *)

val bad : ?offset:int -> string -> error
(** [bad message] is a [bad-request] error. *)

exception Reject of error
(** How decoding and solving abort on a malformed or unservable request;
    the server turns it into an error response. *)

(** [reject message] raises {!Reject} with a [bad-request] error. *)
val reject : ?offset:int -> string -> 'a

(** [decode line] parses one request line. On failure the returned [id] is
    whatever could be recovered from the line ([Null] if none) so the
    error response can still be correlated. *)
val decode : string -> (request, Obs.Json.t * error) result

(** [request_id line] is the best-effort [id] of a raw request line
    ([Null] when the line does not parse to an object with one) —
    what admission control uses to correlate a typed rejection without
    paying a full decode. *)
val request_id : string -> Obs.Json.t

(** [ok_response id result] / [error_response id e] render one response
    line (no trailing newline). Field order is fixed, so responses are
    byte-deterministic. *)
val ok_response : Obs.Json.t -> (string * Obs.Json.t) list -> string

val error_response : Obs.Json.t -> error -> string
