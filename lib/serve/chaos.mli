(** Deterministic chaos testing for the {!Server} daemon.

    A chaos run drives the full daemon loop — {!Server.run} in a spawned
    domain over real Unix pipes — through a fixed set of {e episodes},
    each replaying the same request script under a seeded
    {!Obs.Failpoint} schedule or an adversarial client behavior:

    - [clean] — no injection; the daemon must answer the whole script.
    - [solver-raise] — [serve.solve=raise,n=2]: two solves crash and
      must come back as typed [internal-error]s, isolated to their
      requests.
    - [decode-raise] — [serve.decode=raise,n=1]: a crash in admission.
    - [engine-raise] — [engine.task=raise,n=1]: a poisoned batch wave;
      the server retries it serially.
    - [io-chaos] — seeded short reads, partial writes and solve delays;
      answers must be byte-identical anyway.
    - [deadline] — every fourth request carries [deadline_ms:0] (must be
      typed [deadline-exceeded]); the rest carry a generous budget and
      must answer identically to the clean run.
    - [oversize] — a line beyond [max_line_bytes] lands mid-script and
      must be the only [parse-error].
    - [overload] — a tiny [batch]/[max_queue] against a pre-buffered
      flood; every request is answered, some with typed [overloaded].
    - [disconnect] — the client hangs up mid-stream; the daemon must
      return cleanly (no crash, no hung write).
    - [pressure] — a small [max_cache_bytes] against a
      context-churning script; caches must stay within budget while
      evicting.

    Invariants, checked per episode: the daemon never crashes; every
    request is answered (or, after a hang-up, a prefix is); every
    response is valid JSON, either [ok] or a typed error; every [ok]
    response is byte-identical to the one-shot baseline solve of the
    same request; caches stay within [max_cache_bytes]; armed failpoints
    actually fired. *)

(** [default_script ~n] is [n] solve requests cycling the five
    schedulers over LU ([workload "1"]) 16x16 on a 16x16 mesh — the
    serve bench's workload. *)
val default_script : n:int -> string list

(** [run ~seed ~jobs ~requests ?script ()] executes every episode and
    returns [(pass, report)]: [pass] is the conjunction of all episode
    verdicts and [report] is the [chaos.json] document (per-episode
    request/response counts, error-code histogram, failpoint
    fire counts, cache stats and failure messages). [seed] drives the
    probabilistic failpoint schedules; [script] replaces the default
    [requests]-line script (episodes derive their variants from it). *)
val run :
  ?seed:int -> ?jobs:int -> ?requests:int -> ?script:string list -> unit ->
  bool * Obs.Json.t
