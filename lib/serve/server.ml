type config = {
  jobs : int;
  batch : int;
  max_arena_bytes : int option;
  memo : bool;
}

let default_config () =
  {
    jobs = Sched.Engine.default_jobs ();
    batch = 16;
    max_arena_bytes = None;
    memo = true;
  }

type t = {
  config : config;
  (* shared immutable halves, keyed by canonical instance key; every
     request with the same mesh/trace/policy/kernel reuses the entry *)
  contexts : (string, Sched.Context.t) Hashtbl.t;
  (* response memo: raw request line -> response line (solve ops only).
     Solves are pure functions of the request, so a repeat costs one
     Hashtbl probe. *)
  memo_tbl : (string, string) Hashtbl.t;
  (* warm sessions: context key -> last solved Problem session. A repeat
     instance (possibly under a different fault) is answered by patching
     the checked-out session ([Problem.with_fault_patch]) instead of
     opening a cold one, so only slab rows the fault change repriced are
     refilled. Checkout happens in the serial prepare pass and check-in
     after the wave, so the table has a single writer and no session is
     ever shared by two in-flight solves. *)
  warm : (string, Sched.Problem.t) Hashtbl.t;
  mutable requests : int;
  mutable errors : int;
  mutable rejected : int;
  mutable batches : int;
  mutable memo_hits : int;
  mutable warm_sessions : int;
  mutable stopping : bool;
}

let create ?config () =
  let config = match config with Some c -> c | None -> default_config () in
  if config.jobs < 1 then invalid_arg "Server.create: jobs must be >= 1";
  if config.batch < 1 then invalid_arg "Server.create: batch must be >= 1";
  {
    config;
    contexts = Hashtbl.create 16;
    memo_tbl = Hashtbl.create 64;
    warm = Hashtbl.create 16;
    requests = 0;
    errors = 0;
    rejected = 0;
    batches = 0;
    memo_hits = 0;
    warm_sessions = 0;
    stopping = false;
  }

let hit name = if !Obs.enabled then Obs.Metrics.incr name

(* ---------------------------------------------------------------- *)
(* Instance construction (mirrors the CLI's build_mesh/build_trace)  *)
(* ---------------------------------------------------------------- *)

let build_mesh (m : Protocol.mesh_spec) =
  if m.torus then Pim.Mesh.torus ~rows:m.rows ~cols:m.cols
  else Pim.Mesh.create ~rows:m.rows ~cols:m.cols

let partition_of_name = function
  | "block-2d" -> Workloads.Iteration_space.Block_2d
  | "row-blocks" -> Workloads.Iteration_space.Row_blocks
  | "col-blocks" -> Workloads.Iteration_space.Col_blocks
  | "cyclic-2d" -> Workloads.Iteration_space.Cyclic_2d
  | s -> Protocol.reject (Printf.sprintf "unknown partition %S" s)

let build_trace (spec : Protocol.instance) mesh =
  match spec.trace_text with
  | Some text -> (
      match Reftrace.Serial.of_string text with
      | t -> (
          match Reftrace.Trace.validate t mesh with
          | () -> t
          | exception Invalid_argument m -> Protocol.reject m)
      | exception Failure m ->
          Protocol.reject (Printf.sprintf "inline trace: %s" m))
  | None -> (
      let partition = partition_of_name spec.partition in
      let n = spec.size in
      match spec.workload with
      | "stencil" -> Workloads.Stencil.trace ~partition ~n ~sweeps:8 mesh
      | "tc" | "transitive-closure" ->
          Workloads.Transitive_closure.trace ~partition ~n mesh
      | "fft" -> Workloads.Fft_transpose.trace ~partition ~n mesh
      | "cholesky" -> Workloads.Cholesky.trace ~partition ~n mesh
      | "reduction" ->
          Workloads.Reduction.trace ~partition ~n
            ~bins:(Pim.Mesh.size mesh) mesh
      | label -> (
          match Workloads.Benchmarks.of_label label with
          | b -> Workloads.Benchmarks.trace ~partition b ~n mesh
          | exception Invalid_argument _ ->
              Protocol.reject
                (Printf.sprintf
                   "unknown workload %S (expected 1..5, stencil, tc, fft, \
                    cholesky or reduction)"
                   label)))

let policy_of trace mesh (spec : Protocol.instance) =
  if spec.unbounded then Sched.Problem.Unbounded
  else
    Sched.Problem.Bounded
      (Pim.Memory.capacity_for
         ~data_count:
           (Reftrace.Data_space.size (Reftrace.Trace.space trace))
         ~mesh ~headroom:2)

let kernel_name = function `Separable -> "separable" | `Naive -> "naive"

(* The canonical key naming a shared context: everything the immutable
   half depends on. Inline traces key by content digest, so two clients
   shipping the same trace text share one context. *)
let context_key (spec : Protocol.instance) =
  let source =
    match spec.trace_text with
    | Some text -> Printf.sprintf "trace:%s" (Digest.to_hex (Digest.string text))
    | None ->
        Printf.sprintf "w:%s;n:%d;p:%s" spec.workload spec.size
          spec.partition
  in
  Printf.sprintf "%s;mesh:%dx%d;torus:%b;unb:%b;k:%s" source spec.mesh.rows
    spec.mesh.cols spec.mesh.torus spec.unbounded
    (kernel_name spec.kernel)

let find_context t (spec : Protocol.instance) =
  let key = context_key spec in
  match Hashtbl.find_opt t.contexts key with
  | Some ctx ->
      hit "serve.context_hits";
      ctx
  | None ->
      hit "serve.context_misses";
      let mesh = build_mesh spec.mesh in
      let trace = build_trace spec mesh in
      let policy = policy_of trace mesh spec in
      let ctx =
        Sched.Context.create ~policy ~jobs:t.config.jobs
          ~kernel:spec.kernel mesh trace
      in
      Hashtbl.add t.contexts key ctx;
      ctx

let build_fault mesh = function
  | None -> Pim.Fault.none
  | Some (Protocol.Fault_explicit { dead_arrays; dead_nodes; dead_links }) -> (
      if dead_arrays <> [] then
        Protocol.reject "\"dead_arrays\" requires an \"arrays\" group instance";
      match Pim.Fault.create ~dead_nodes ~dead_links () with
      | f -> f
      | exception Invalid_argument m -> Protocol.reject m)
  | Some (Protocol.Fault_seeded { seed; array_rate; node_rate; link_rate }) -> (
      if array_rate <> 0. then
        Protocol.reject "\"array_rate\" requires an \"arrays\" group instance";
      match Pim.Fault.inject ~seed ~node_rate ~link_rate mesh with
      | f -> f
      | exception Invalid_argument m -> Protocol.reject m)

(* ---------------------------------------------------------------- *)
(* Group instances (the multi-array tier)                            *)
(* ---------------------------------------------------------------- *)

(* Group problems are request-scoped, not context-cached: per-member
   sessions own mutable arenas that one batch wave could race on, and
   the group tier's construction cost is dwarfed by its solves. The
   line-keyed response memo still absorbs exact repeats. *)

let build_group (spec : Protocol.instance) arrays =
  match
    Multi.Array_group.of_spec ~inter_cost:spec.inter_cost
      ~torus:spec.mesh.torus arrays
  with
  | g -> g
  | exception Invalid_argument m -> Protocol.reject m

let build_group_trace (spec : Protocol.instance) group =
  match spec.trace_text with
  | Some text -> (
      match Reftrace.Serial.of_string text with
      | t -> (
          match Multi.Array_group.validate_trace group t with
          | () -> t
          | exception Invalid_argument m -> Protocol.reject m)
      | exception Failure m ->
          Protocol.reject (Printf.sprintf "inline trace: %s" m))
  | None ->
      (* generated workloads are laid out on the virtual mesh (the
         members tiled onto the interconnect) and remapped to global
         ranks; a 1-member group's virtual mesh is the member itself *)
      let vm = Multi.Array_group.virtual_mesh group in
      Multi.Array_group.remap_virtual_trace group (build_trace spec vm)

let group_policy trace group (spec : Protocol.instance) =
  if spec.unbounded then Sched.Problem.Unbounded
  else
    (* same headroom-2 rule, over the group's aggregate processor count *)
    Sched.Problem.Bounded
      (Pim.Memory.capacity_for
         ~data_count:(Reftrace.Data_space.size (Reftrace.Trace.space trace))
         ~mesh:(Pim.Mesh.create ~rows:1 ~cols:(Multi.Array_group.size group))
         ~headroom:2)

let build_group_fault group = function
  | None -> Multi.Group_fault.none
  | Some (Protocol.Fault_explicit { dead_arrays; dead_nodes; dead_links }) -> (
      let f =
        Multi.Group_fault.create ~dead_arrays ~dead_nodes ~dead_links ()
      in
      match Multi.Group_fault.validate f group with
      | () -> f
      | exception Invalid_argument m -> Protocol.reject m)
  | Some (Protocol.Fault_seeded { seed; array_rate; node_rate; link_rate })
    -> (
      match
        Multi.Group_fault.inject ~seed ~array_rate ~node_rate ~link_rate group
      with
      | f -> f
      | exception Invalid_argument m -> Protocol.reject m)

let build_group_problem t (instance : Protocol.instance) arrays fault_spec =
  let group = build_group instance arrays in
  let trace = build_group_trace instance group in
  let policy = group_policy trace group instance in
  let fault = build_group_fault group fault_spec in
  match
    Multi.Group_problem.create ~policy ~jobs:t.config.jobs
      ~kernel:instance.Protocol.kernel ~fault group trace
  with
  | gp -> gp
  | exception Invalid_argument m -> Protocol.reject m

let solve_group id gp algorithm =
  let algorithm =
    match Sched.Scheduler.of_name algorithm with
    | a -> a
    | exception Invalid_argument m -> Protocol.reject m
  in
  match Multi.Group_solver.evaluate gp algorithm with
  | plan, breakdown ->
      Protocol.ok_response id
        [
          ("algorithm", Obs.Json.String (Sched.Scheduler.name algorithm));
          ( "arrays",
            Obs.Json.Int
              (Multi.Array_group.n_members (Multi.Group_problem.group gp)) );
          ("total", Obs.Json.Int breakdown.Multi.Group_schedule.total);
          ("reference", Obs.Json.Int breakdown.Multi.Group_schedule.reference);
          ("movement", Obs.Json.Int breakdown.Multi.Group_schedule.movement);
          ("moves", Obs.Json.Int (Multi.Group_schedule.moves plan));
          ( "array_moves",
            Obs.Json.Int (Multi.Group_schedule.array_moves plan) );
          ("plan", Obs.Json.String (Multi.Group_serial.to_string plan));
        ]
  | exception Invalid_argument m ->
      raise
        (Protocol.Reject { code = "solve-error"; message = m; offset = None })

(* ---------------------------------------------------------------- *)
(* Solving                                                           *)
(* ---------------------------------------------------------------- *)

let admit_bytes t need =
  match t.config.max_arena_bytes with
  | None -> ()
  | Some budget ->
      if need > budget then
        raise
          (Protocol.Reject
             {
               code = "over-budget";
               message =
                 Printf.sprintf
                   "instance needs %d arena bytes, budget is %d" need budget;
               offset = None;
             })

let admit t ctx = admit_bytes t ctx.Sched.Context.max_arena_bytes

(* The timed replay is request-scoped and pure: it re-runs the solved
   schedule through the cycle-honest simulator with the request's link
   model and the same fault set the solver saw. A deadlock (possible
   only with bounded queues) is a property of the requested model, not a
   server failure, so it comes back as a solve-error. *)
let timed_fields ctx fault model schedule =
  let mesh = ctx.Sched.Context.mesh in
  let trace = ctx.Sched.Context.trace in
  match
    Pim.Timed_simulator.run ~fault ~model mesh
      (Sched.Schedule.to_rounds schedule trace)
  with
  | r ->
      [
        ( "timed",
          Obs.Json.Obj
            [
              ("cycles", Obs.Json.Int r.Pim.Timed_simulator.total_cycles);
              ( "volume_hops",
                Obs.Json.Int r.Pim.Timed_simulator.total_volume_hops );
              ( "link_utilization",
                Obs.Json.Float r.Pim.Timed_simulator.link_utilization );
              ( "bandwidth_idle",
                Obs.Json.Int r.Pim.Timed_simulator.bandwidth_idle );
              ( "queue_stall_cycles",
                Obs.Json.Int r.Pim.Timed_simulator.queue_stall_cycles );
              ("compute_idle", Obs.Json.Int r.Pim.Timed_simulator.compute_idle);
              ("energy", Obs.Json.Float r.Pim.Timed_simulator.energy);
            ] );
      ]
  | exception Pim.Timed_simulator.Deadlock { cycle; in_flight } ->
      raise
        (Protocol.Reject
           {
             code = "solve-error";
             message =
               Printf.sprintf
                 "timed replay deadlocked at cycle %d with %d packets in \
                  flight (queue_depth too small)"
                 cycle in_flight;
             offset = None;
           })

let solve id ctx ~key ~base algorithm fault_spec timed =
  let algorithm =
    match Sched.Scheduler.of_name algorithm with
    | a -> a
    | exception Invalid_argument m -> Protocol.reject m
  in
  let fault = build_fault ctx.Sched.Context.mesh fault_spec in
  (* request-scoped session over the shared context: either a warm
     session checked out of the pool and patched to this request's fault
     (only repriced slab rows refill), or a cold one. Either way the
     session is private to this solve and checked back in after the
     wave, so answers stay byte-identical to a cold rebuild. *)
  let problem =
    match
      match base with
      | Some p -> Sched.Problem.with_fault_patch p fault
      | None -> Sched.Problem.of_context ~fault ctx
    with
    | p -> p
    | exception Invalid_argument m -> Protocol.reject m
  in
  match Sched.Scheduler.solve problem algorithm with
  | schedule ->
      let trace = ctx.Sched.Context.trace in
      let breakdown = Sched.Schedule.cost schedule trace in
      let timed_part =
        match timed with
        | None -> []
        | Some model -> timed_fields ctx fault model schedule
      in
      ( Protocol.ok_response id
          ([
             ("algorithm", Obs.Json.String (Sched.Scheduler.name algorithm));
             ("total", Obs.Json.Int breakdown.Sched.Schedule.total);
             ("reference", Obs.Json.Int breakdown.Sched.Schedule.reference);
             ("movement", Obs.Json.Int breakdown.Sched.Schedule.movement);
             ("moves", Obs.Json.Int (Sched.Schedule.moves schedule));
             ( "plan",
               Obs.Json.String (Sched.Schedule_serial.to_string schedule) );
           ]
          @ timed_part),
        Some (key, problem) )
  | exception Invalid_argument m ->
      raise
        (Protocol.Reject
           { code = "solve-error"; message = m; offset = None })

let stats_fields t =
  [
    ("protocol", Obs.Json.String Protocol.version);
    ("requests", Obs.Json.Int t.requests);
    ("errors", Obs.Json.Int t.errors);
    ("rejected", Obs.Json.Int t.rejected);
    ("batches", Obs.Json.Int t.batches);
    ("contexts", Obs.Json.Int (Hashtbl.length t.contexts));
    ("memo_entries", Obs.Json.Int (Hashtbl.length t.memo_tbl));
    ("memo_hits", Obs.Json.Int t.memo_hits);
    ("warm_entries", Obs.Json.Int (Hashtbl.length t.warm));
    ("warm_sessions", Obs.Json.Int t.warm_sessions);
    ("jobs", Obs.Json.Int t.config.jobs);
  ]

(* ---------------------------------------------------------------- *)
(* Batch execution                                                   *)
(* ---------------------------------------------------------------- *)

(* What the serial prepare pass leaves for the parallel wave: either a
   finished response, or a solve closure still to run. Everything that
   mutates server state (cache fills, counters, memo probes) happens in
   prepare; the fan-out only runs pure per-request solves. *)
type prepared =
  | Done of string
  | Todo of {
      line : string;
      id : Obs.Json.t;
      work : unit -> string * (string * Sched.Problem.t) option;
          (** the pure per-request solve; also yields the session to
              check back into the warm pool (solo solves only) *)
    }

let prepare t line =
  t.requests <- t.requests + 1;
  hit "serve.requests";
  match Protocol.decode line with
  | Error (id, e) ->
      t.errors <- t.errors + 1;
      hit "serve.errors";
      Done (Protocol.error_response id e)
  | Ok { id; op } -> (
      match op with
      | Ping ->
          Done
            (Protocol.ok_response id
               [ ("protocol", Obs.Json.String Protocol.version) ])
      | Stats -> Done (Protocol.ok_response id (stats_fields t))
      | Shutdown ->
          t.stopping <- true;
          Done (Protocol.ok_response id [ ("stopping", Obs.Json.Bool true) ])
      | Solve { instance; algorithm; fault; timed } -> (
          match
            if t.config.memo then Hashtbl.find_opt t.memo_tbl line else None
          with
          | Some response ->
              t.memo_hits <- t.memo_hits + 1;
              hit "serve.memo_hits";
              Done response
          | None -> (
              (* context resolution, group construction and admission
                 (with their possible rejections) are part of prepare so
                 server state has a single writer; only the pure solve
                 closure escapes onto the parallel wave *)
              match
                match instance.Protocol.arrays with
                | Some arrays ->
                    if timed <> None then
                      Protocol.reject
                        "\"timed\" replay is single-mesh only (no group \
                         simulator); drop the \"arrays\" field";
                    let gp = build_group_problem t instance arrays fault in
                    admit_bytes t (Multi.Group_problem.max_arena_bytes gp);
                    hit "serve.group_requests";
                    fun () -> (solve_group id gp algorithm, None)
                | None ->
                    let ctx = find_context t instance in
                    admit t ctx;
                    (* warm checkout: the serial prepare pass owns the
                       table, so two same-key requests in one wave race
                       on nothing — the second simply opens cold *)
                    let key = context_key instance in
                    let base =
                      match Hashtbl.find_opt t.warm key with
                      | Some p ->
                          Hashtbl.remove t.warm key;
                          t.warm_sessions <- t.warm_sessions + 1;
                          hit "serve.warm_sessions";
                          Some p
                      | None -> None
                    in
                    fun () -> solve id ctx ~key ~base algorithm fault timed
              with
              | work -> Todo { line; id; work }
              | exception Protocol.Reject e ->
                  (if e.Protocol.code = "over-budget" then begin
                     t.rejected <- t.rejected + 1;
                     hit "serve.rejected"
                   end
                   else begin
                     t.errors <- t.errors + 1;
                     hit "serve.errors"
                   end);
                  Done (Protocol.error_response id e))))

let now () = Unix.gettimeofday ()

type outcome =
  | Passthrough
  | Solved of string * (string * Sched.Problem.t) option
  | Failed

let run_prepared _t = function
  | Done response -> (response, 0., Passthrough)
  | Todo { line; id; work } -> (
      let t0 = now () in
      match work () with
      | response, session -> (response, now () -. t0, Solved (line, session))
      | exception Protocol.Reject e ->
          (Protocol.error_response id e, now () -. t0, Failed))

(* [process_batch t lines] answers one wave of request lines, in order.
   Decode, admission control and cache management run serially; the
   per-request solves fan out on the engine's domain pool. Returns each
   response paired with its solve latency in seconds (0 for non-solve
   ops). Responses depend only on the request, never on batching or
   [jobs], so a client cannot observe the wave boundaries. *)
let process_batch t lines =
  t.batches <- t.batches + 1;
  hit "serve.batches";
  let prepared = Array.of_list (List.map (prepare t) lines) in
  let results =
    Sched.Engine.map ~jobs:t.config.jobs (Array.length prepared) (fun i ->
        run_prepared t prepared.(i))
  in
  (* memo inserts, warm check-ins and failure accounting back on the
     single writer *)
  Array.iter
    (fun (response, dt, outcome) ->
      match outcome with
      | Passthrough -> ()
      | Solved (line, session) ->
          if !Obs.enabled then Obs.Metrics.observe "serve.solve_us" (int_of_float (dt *. 1e6));
          if t.config.memo then Hashtbl.replace t.memo_tbl line response;
          (match session with
          | Some (key, problem) ->
              (* first same-key solve of the wave wins the slot; later
                 sessions are dropped rather than replacing it *)
              if not (Hashtbl.mem t.warm key) then Hashtbl.add t.warm key problem
          | None -> ())
      | Failed ->
          if !Obs.enabled then Obs.Metrics.observe "serve.solve_us" (int_of_float (dt *. 1e6));
          t.errors <- t.errors + 1;
          hit "serve.errors")
    results;
  List.map (fun (r, dt, _) -> (r, dt)) (Array.to_list results)

let handle_line t line =
  match process_batch t [ line ] with
  | [ (response, _) ] -> response
  | _ -> assert false

let stopping t = t.stopping
let stats_json t = Obs.Json.Obj (stats_fields t)

(* ---------------------------------------------------------------- *)
(* The daemon loop                                                   *)
(* ---------------------------------------------------------------- *)

(* Raw-fd line reader: [in_channel] cannot tell us whether more input is
   already buffered, and greedy batching needs exactly that — drain what
   has arrived, block only when idle. *)
type reader = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  chunk : Bytes.t;
  mutable eof : bool;
}

let reader fd = { fd; buf = Buffer.create 4096; chunk = Bytes.create 65536; eof = false }

let buffered_line r =
  let s = Buffer.contents r.buf in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
      Buffer.clear r.buf;
      Buffer.add_substring r.buf s (i + 1) (String.length s - i - 1);
      Some (String.sub s 0 i)

let refill r =
  match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
  | 0 ->
      r.eof <- true;
      false
  | n ->
      Buffer.add_subbytes r.buf r.chunk 0 n;
      true
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> true

(* Blocking read of one line; [None] at end of input. A final line
   without a trailing newline still counts. *)
let rec read_line_block r =
  match buffered_line r with
  | Some l -> Some l
  | None ->
      if r.eof then
        if Buffer.length r.buf > 0 then begin
          let l = Buffer.contents r.buf in
          Buffer.clear r.buf;
          Some l
        end
        else None
      else begin
        ignore (refill r);
        read_line_block r
      end

(* One line only if it is already available without blocking. *)
let rec read_line_avail r =
  match buffered_line r with
  | Some l -> Some l
  | None ->
      if r.eof then None
      else begin
        match Unix.select [ r.fd ] [] [] 0. with
        | [], _, _ -> None
        | _ ->
            if refill r then read_line_avail r
            else None
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_line_avail r
      end

(* [run t ~input oc] is the daemon: read request lines from [input],
   write response lines to [oc] in order, batching whatever has already
   arrived (up to [config.batch]) onto one wave so compatible requests
   share hot contexts and the domain pool. Returns on end of input or
   after answering a shutdown op. *)
let run t ~input oc =
  let r = reader input in
  let rec loop () =
    if not (stopping t) then
      match read_line_block r with
      | None -> ()
      | Some first ->
          let rec gather acc k =
            if k >= t.config.batch then List.rev acc
            else
              match read_line_avail r with
              | None -> List.rev acc
              | Some l -> gather (l :: acc) (k + 1)
          in
          let lines = gather [ first ] 1 in
          List.iter
            (fun (response, _) ->
              output_string oc response;
              output_char oc '\n')
            (process_batch t lines);
          flush oc;
          loop ()
  in
  loop ()
