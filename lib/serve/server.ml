type config = {
  jobs : int;
  batch : int;
  max_arena_bytes : int option;
  memo : bool;
  max_cache_bytes : int;
  max_line_bytes : int;
  max_queue : int;
  write_timeout_ms : float;
}

let default_config () =
  {
    jobs = Sched.Engine.default_jobs ();
    batch = 16;
    max_arena_bytes = None;
    memo = true;
    max_cache_bytes = 256 * 1024 * 1024;
    max_line_bytes = 4 * 1024 * 1024;
    max_queue = 1024;
    write_timeout_ms = 5_000.;
  }

(* Chaos hooks on the request path. All no-ops (one ref read) until a
   failpoint schedule is armed; see DESIGN.md "Chaos engineering". *)
let fp_read = Obs.Failpoint.site "serve.read"
let fp_decode = Obs.Failpoint.site "serve.decode"
let fp_solve = Obs.Failpoint.site "serve.solve"
let fp_write = Obs.Failpoint.site "serve.write"

type t = {
  config : config;
  (* shared immutable halves, keyed by canonical instance key; every
     request with the same mesh/trace/policy/kernel reuses the entry.
     Byte-accounted LRU: a cold key landing in a full cache evicts the
     least-recently-served instances (and their warm sessions). *)
  contexts : Sched.Context.t Lru.t;
  (* response memo: raw request line -> response line (solve ops only).
     Solves are pure functions of the request, so a repeat costs one
     probe. *)
  memo_tbl : string Lru.t;
  (* warm sessions: context key -> last solved Problem session. A repeat
     instance (possibly under a different fault) is answered by patching
     the checked-out session ([Problem.with_fault_patch]) instead of
     opening a cold one, so only slab rows the fault change repriced are
     refilled. Checkout happens in the serial prepare pass and check-in
     after the wave, so the table has a single writer and no session is
     ever shared by two in-flight solves. Sessions are the heavy entries
     (their weight is the full-force arena bound), so they get the
     largest cache share. *)
  warm : Sched.Problem.t Lru.t;
  mutable requests : int;
  mutable errors : int;
  mutable rejected : int;
  mutable batches : int;
  mutable memo_hits : int;
  mutable warm_sessions : int;
  mutable overloaded : int;
  mutable deadline_exceeded : int;
  mutable task_crashes : int;
  mutable line_overflows : int;
  mutable wave_retries : int;
  mutable last_wave_ms : float; (* the overloaded retry_after_ms hint *)
  mutable stopping : bool;
}

let create ?config () =
  let config = match config with Some c -> c | None -> default_config () in
  if config.jobs < 1 then invalid_arg "Server.create: jobs must be >= 1";
  if config.batch < 1 then invalid_arg "Server.create: batch must be >= 1";
  if config.max_cache_bytes < 0 then
    invalid_arg "Server.create: max_cache_bytes must be >= 0";
  if config.max_line_bytes < 1 then
    invalid_arg "Server.create: max_line_bytes must be >= 1";
  if config.max_queue < 0 then
    invalid_arg "Server.create: max_queue must be >= 0";
  if config.write_timeout_ms <= 0. then
    invalid_arg "Server.create: write_timeout_ms must be positive";
  let b = config.max_cache_bytes in
  {
    config;
    (* split of the byte budget: warm sessions are the point of the
       server (and the heaviest entries), contexts amortize instance
       preprocessing, the memo is cheap opportunism *)
    contexts = Lru.create ~budget:(b / 2);
    memo_tbl = Lru.create ~budget:(b / 8);
    warm = Lru.create ~budget:(b * 3 / 8);
    requests = 0;
    errors = 0;
    rejected = 0;
    batches = 0;
    memo_hits = 0;
    warm_sessions = 0;
    overloaded = 0;
    deadline_exceeded = 0;
    task_crashes = 0;
    line_overflows = 0;
    wave_retries = 0;
    last_wave_ms = 1.;
    stopping = false;
  }

let hit name = if !Obs.enabled then Obs.Metrics.incr name

let note_evictions t evicted =
  match evicted with
  | [] -> ()
  | l ->
      ignore t;
      if !Obs.enabled then
        Obs.Metrics.add "serve.cache_evictions" (List.length l)

(* ---------------------------------------------------------------- *)
(* Instance construction (mirrors the CLI's build_mesh/build_trace)  *)
(* ---------------------------------------------------------------- *)

let build_mesh (m : Protocol.mesh_spec) =
  if m.torus then Pim.Mesh.torus ~rows:m.rows ~cols:m.cols
  else Pim.Mesh.create ~rows:m.rows ~cols:m.cols

let partition_of_name = function
  | "block-2d" -> Workloads.Iteration_space.Block_2d
  | "row-blocks" -> Workloads.Iteration_space.Row_blocks
  | "col-blocks" -> Workloads.Iteration_space.Col_blocks
  | "cyclic-2d" -> Workloads.Iteration_space.Cyclic_2d
  | s -> Protocol.reject (Printf.sprintf "unknown partition %S" s)

let build_trace (spec : Protocol.instance) mesh =
  match spec.trace_text with
  | Some text -> (
      match Reftrace.Serial.of_string text with
      | t -> (
          match Reftrace.Trace.validate t mesh with
          | () -> t
          | exception Invalid_argument m -> Protocol.reject m)
      | exception Failure m ->
          Protocol.reject (Printf.sprintf "inline trace: %s" m))
  | None -> (
      let partition = partition_of_name spec.partition in
      let n = spec.size in
      match spec.workload with
      | "stencil" -> Workloads.Stencil.trace ~partition ~n ~sweeps:8 mesh
      | "tc" | "transitive-closure" ->
          Workloads.Transitive_closure.trace ~partition ~n mesh
      | "fft" -> Workloads.Fft_transpose.trace ~partition ~n mesh
      | "cholesky" -> Workloads.Cholesky.trace ~partition ~n mesh
      | "reduction" ->
          Workloads.Reduction.trace ~partition ~n
            ~bins:(Pim.Mesh.size mesh) mesh
      | label -> (
          match Workloads.Benchmarks.of_label label with
          | b -> Workloads.Benchmarks.trace ~partition b ~n mesh
          | exception Invalid_argument _ ->
              Protocol.reject
                (Printf.sprintf
                   "unknown workload %S (expected 1..5, stencil, tc, fft, \
                    cholesky or reduction)"
                   label)))

let policy_of trace mesh (spec : Protocol.instance) =
  if spec.unbounded then Sched.Problem.Unbounded
  else
    Sched.Problem.Bounded
      (Pim.Memory.capacity_for
         ~data_count:
           (Reftrace.Data_space.size (Reftrace.Trace.space trace))
         ~mesh ~headroom:2)

let kernel_name = function `Separable -> "separable" | `Naive -> "naive"

(* The canonical key naming a shared context: everything the immutable
   half depends on. Inline traces key by content digest, so two clients
   shipping the same trace text share one context. *)
let context_key (spec : Protocol.instance) =
  let source =
    match spec.trace_text with
    | Some text -> Printf.sprintf "trace:%s" (Digest.to_hex (Digest.string text))
    | None ->
        Printf.sprintf "w:%s;n:%d;p:%s" spec.workload spec.size
          spec.partition
  in
  Printf.sprintf "%s;mesh:%dx%d;torus:%b;unb:%b;k:%s" source spec.mesh.rows
    spec.mesh.cols spec.mesh.torus spec.unbounded
    (kernel_name spec.kernel)

(* Cache weight of a shared context: the axis tables (and the naive
   kernel's full distance matrix) plus a slice of the arena bound as a
   proxy for the trace and window structures. An estimate — the LRU
   budget is a shedding threshold, not an allocator. *)
let context_bytes (ctx : Sched.Context.t) =
  let mesh = ctx.Sched.Context.mesh in
  let cols = Pim.Mesh.cols mesh and rows = Pim.Mesh.rows mesh in
  let axis = 8 * 2 * ((cols * cols) + (rows * rows)) in
  let naive =
    match ctx.Sched.Context.naive_dist with
    | Some _ -> 8 * Pim.Mesh.size mesh * Pim.Mesh.size mesh
    | None -> 0
  in
  axis + naive + (ctx.Sched.Context.max_arena_bytes / 8) + 4096

let find_context t (spec : Protocol.instance) =
  let key = context_key spec in
  match Lru.find t.contexts key with
  | Some ctx ->
      hit "serve.context_hits";
      ctx
  | None ->
      hit "serve.context_misses";
      let mesh = build_mesh spec.mesh in
      let trace = build_trace spec mesh in
      let policy = policy_of trace mesh spec in
      let ctx =
        Sched.Context.create ~policy ~jobs:t.config.jobs
          ~kernel:spec.kernel mesh trace
      in
      let evicted = Lru.add t.contexts key ctx ~bytes:(context_bytes ctx) in
      (* an evicted context takes its warm session with it: the session
         aliases the context and can never be checked out again through
         a key whose context is gone *)
      List.iter (fun (k, _) -> Lru.remove t.warm k) evicted;
      note_evictions t evicted;
      ctx

let build_fault mesh = function
  | None -> Pim.Fault.none
  | Some (Protocol.Fault_explicit { dead_arrays; dead_nodes; dead_links }) -> (
      if dead_arrays <> [] then
        Protocol.reject "\"dead_arrays\" requires an \"arrays\" group instance";
      match Pim.Fault.create ~dead_nodes ~dead_links () with
      | f -> f
      | exception Invalid_argument m -> Protocol.reject m)
  | Some (Protocol.Fault_seeded { seed; array_rate; node_rate; link_rate }) -> (
      if array_rate <> 0. then
        Protocol.reject "\"array_rate\" requires an \"arrays\" group instance";
      match Pim.Fault.inject ~seed ~node_rate ~link_rate mesh with
      | f -> f
      | exception Invalid_argument m -> Protocol.reject m)

(* ---------------------------------------------------------------- *)
(* Group instances (the multi-array tier)                            *)
(* ---------------------------------------------------------------- *)

(* Group problems are request-scoped, not context-cached: per-member
   sessions own mutable arenas that one batch wave could race on, and
   the group tier's construction cost is dwarfed by its solves. The
   line-keyed response memo still absorbs exact repeats. *)

let build_group (spec : Protocol.instance) arrays =
  match
    Multi.Array_group.of_spec ~inter_cost:spec.inter_cost
      ~torus:spec.mesh.torus arrays
  with
  | g -> g
  | exception Invalid_argument m -> Protocol.reject m

let build_group_trace (spec : Protocol.instance) group =
  match spec.trace_text with
  | Some text -> (
      match Reftrace.Serial.of_string text with
      | t -> (
          match Multi.Array_group.validate_trace group t with
          | () -> t
          | exception Invalid_argument m -> Protocol.reject m)
      | exception Failure m ->
          Protocol.reject (Printf.sprintf "inline trace: %s" m))
  | None ->
      (* generated workloads are laid out on the virtual mesh (the
         members tiled onto the interconnect) and remapped to global
         ranks; a 1-member group's virtual mesh is the member itself *)
      let vm = Multi.Array_group.virtual_mesh group in
      Multi.Array_group.remap_virtual_trace group (build_trace spec vm)

let group_policy trace group (spec : Protocol.instance) =
  if spec.unbounded then Sched.Problem.Unbounded
  else
    (* same headroom-2 rule, over the group's aggregate processor count *)
    Sched.Problem.Bounded
      (Pim.Memory.capacity_for
         ~data_count:(Reftrace.Data_space.size (Reftrace.Trace.space trace))
         ~mesh:(Pim.Mesh.create ~rows:1 ~cols:(Multi.Array_group.size group))
         ~headroom:2)

let build_group_fault group = function
  | None -> Multi.Group_fault.none
  | Some (Protocol.Fault_explicit { dead_arrays; dead_nodes; dead_links }) -> (
      let f =
        Multi.Group_fault.create ~dead_arrays ~dead_nodes ~dead_links ()
      in
      match Multi.Group_fault.validate f group with
      | () -> f
      | exception Invalid_argument m -> Protocol.reject m)
  | Some (Protocol.Fault_seeded { seed; array_rate; node_rate; link_rate })
    -> (
      match
        Multi.Group_fault.inject ~seed ~array_rate ~node_rate ~link_rate group
      with
      | f -> f
      | exception Invalid_argument m -> Protocol.reject m)

let build_group_problem t (instance : Protocol.instance) arrays fault_spec =
  let group = build_group instance arrays in
  let trace = build_group_trace instance group in
  let policy = group_policy trace group instance in
  let fault = build_group_fault group fault_spec in
  match
    Multi.Group_problem.create ~policy ~jobs:t.config.jobs
      ~kernel:instance.Protocol.kernel ~fault group trace
  with
  | gp -> gp
  | exception Invalid_argument m -> Protocol.reject m

let solve_error m = Protocol.make_error "solve-error" m

let solve_group id gp ~cancel algorithm =
  let algorithm =
    match Sched.Scheduler.of_name algorithm with
    | a -> a
    | exception Invalid_argument m -> Protocol.reject m
  in
  (* arm the member sessions so the per-datum poll points inside each
     member solve honor the request deadline *)
  for m = 0 to Multi.Group_problem.n_members gp - 1 do
    Sched.Problem.set_cancel (Multi.Group_problem.sub gp m) cancel
  done;
  match Multi.Group_solver.evaluate gp algorithm with
  | plan, breakdown ->
      Protocol.ok_response id
        [
          ("algorithm", Obs.Json.String (Sched.Scheduler.name algorithm));
          ( "arrays",
            Obs.Json.Int
              (Multi.Array_group.n_members (Multi.Group_problem.group gp)) );
          ("total", Obs.Json.Int breakdown.Multi.Group_schedule.total);
          ("reference", Obs.Json.Int breakdown.Multi.Group_schedule.reference);
          ("movement", Obs.Json.Int breakdown.Multi.Group_schedule.movement);
          ("moves", Obs.Json.Int (Multi.Group_schedule.moves plan));
          ( "array_moves",
            Obs.Json.Int (Multi.Group_schedule.array_moves plan) );
          ("plan", Obs.Json.String (Multi.Group_serial.to_string plan));
        ]
  | exception Invalid_argument m -> raise (Protocol.Reject (solve_error m))

(* ---------------------------------------------------------------- *)
(* Solving                                                           *)
(* ---------------------------------------------------------------- *)

let admit_bytes t need =
  match t.config.max_arena_bytes with
  | None -> ()
  | Some budget ->
      if need > budget then
        raise
          (Protocol.Reject
             (Protocol.make_error "over-budget"
                (Printf.sprintf
                   "instance needs %d arena bytes, budget is %d" need budget)))

let admit t ctx = admit_bytes t ctx.Sched.Context.max_arena_bytes

(* The timed replay is request-scoped and pure: it re-runs the solved
   schedule through the cycle-honest simulator with the request's link
   model and the same fault set the solver saw. A deadlock (possible
   only with bounded queues) is a property of the requested model, not a
   server failure, so it comes back as a solve-error. *)
let timed_fields ctx fault model schedule =
  let mesh = ctx.Sched.Context.mesh in
  let trace = ctx.Sched.Context.trace in
  match
    Pim.Timed_simulator.run ~fault ~model mesh
      (Sched.Schedule.to_rounds schedule trace)
  with
  | r ->
      [
        ( "timed",
          Obs.Json.Obj
            [
              ("cycles", Obs.Json.Int r.Pim.Timed_simulator.total_cycles);
              ( "volume_hops",
                Obs.Json.Int r.Pim.Timed_simulator.total_volume_hops );
              ( "link_utilization",
                Obs.Json.Float r.Pim.Timed_simulator.link_utilization );
              ( "bandwidth_idle",
                Obs.Json.Int r.Pim.Timed_simulator.bandwidth_idle );
              ( "queue_stall_cycles",
                Obs.Json.Int r.Pim.Timed_simulator.queue_stall_cycles );
              ("compute_idle", Obs.Json.Int r.Pim.Timed_simulator.compute_idle);
              ("energy", Obs.Json.Float r.Pim.Timed_simulator.energy);
            ] );
      ]
  | exception Pim.Timed_simulator.Deadlock { cycle; in_flight } ->
      raise
        (Protocol.Reject
           (solve_error
              (Printf.sprintf
                 "timed replay deadlocked at cycle %d with %d packets in \
                  flight (queue_depth too small)"
                 cycle in_flight)))

let solve id ctx ~key ~base ~cancel algorithm fault_spec timed =
  let algorithm =
    match Sched.Scheduler.of_name algorithm with
    | a -> a
    | exception Invalid_argument m -> Protocol.reject m
  in
  let fault = build_fault ctx.Sched.Context.mesh fault_spec in
  (* request-scoped session over the shared context: either a warm
     session checked out of the pool and patched to this request's fault
     (only repriced slab rows refill), or a cold one. Either way the
     session is private to this solve and checked back in after the
     wave, so answers stay byte-identical to a cold rebuild. *)
  let problem =
    match
      match base with
      | Some p -> Sched.Problem.with_fault_patch p fault
      | None -> Sched.Problem.of_context ~fault ctx
    with
    | p -> p
    | exception Invalid_argument m -> Protocol.reject m
  in
  Sched.Problem.set_cancel problem cancel;
  match Sched.Scheduler.solve problem algorithm with
  | schedule ->
      let trace = ctx.Sched.Context.trace in
      let breakdown = Sched.Schedule.cost schedule trace in
      let timed_part =
        match timed with
        | None -> []
        | Some model -> timed_fields ctx fault model schedule
      in
      (* disarm before the session rejoins the warm pool: the token is
         request-scoped, the session is not *)
      Sched.Problem.set_cancel problem Sched.Cancel.none;
      ( Protocol.ok_response id
          ([
             ("algorithm", Obs.Json.String (Sched.Scheduler.name algorithm));
             ("total", Obs.Json.Int breakdown.Sched.Schedule.total);
             ("reference", Obs.Json.Int breakdown.Sched.Schedule.reference);
             ("movement", Obs.Json.Int breakdown.Sched.Schedule.movement);
             ("moves", Obs.Json.Int (Sched.Schedule.moves schedule));
             ( "plan",
               Obs.Json.String (Sched.Schedule_serial.to_string schedule) );
           ]
          @ timed_part),
        Some (key, problem) )
  | exception Invalid_argument m -> raise (Protocol.Reject (solve_error m))

let cache_bytes t =
  Lru.used_bytes t.contexts + Lru.used_bytes t.memo_tbl
  + Lru.used_bytes t.warm

let cache_evictions t =
  Lru.evictions t.contexts + Lru.evictions t.memo_tbl + Lru.evictions t.warm

let stats_fields t =
  [
    ("protocol", Obs.Json.String Protocol.version);
    ("requests", Obs.Json.Int t.requests);
    ("errors", Obs.Json.Int t.errors);
    ("rejected", Obs.Json.Int t.rejected);
    ("batches", Obs.Json.Int t.batches);
    ("contexts", Obs.Json.Int (Lru.length t.contexts));
    ("memo_entries", Obs.Json.Int (Lru.length t.memo_tbl));
    ("memo_hits", Obs.Json.Int t.memo_hits);
    ("warm_entries", Obs.Json.Int (Lru.length t.warm));
    ("warm_sessions", Obs.Json.Int t.warm_sessions);
    ("cache_bytes", Obs.Json.Int (cache_bytes t));
    ("cache_budget", Obs.Json.Int t.config.max_cache_bytes);
    ("cache_evictions", Obs.Json.Int (cache_evictions t));
    ("overloaded", Obs.Json.Int t.overloaded);
    ("deadline_exceeded", Obs.Json.Int t.deadline_exceeded);
    ("task_crashes", Obs.Json.Int t.task_crashes);
    ("line_overflows", Obs.Json.Int t.line_overflows);
    ("wave_retries", Obs.Json.Int t.wave_retries);
    ("jobs", Obs.Json.Int t.config.jobs);
  ]

(* ---------------------------------------------------------------- *)
(* Batch execution                                                   *)
(* ---------------------------------------------------------------- *)

let internal_error e =
  let bt = Printexc.get_backtrace () in
  let extra =
    if bt = "" then [] else [ ("backtrace", Obs.Json.String bt) ]
  in
  Protocol.make_error ~extra "internal-error" (Printexc.to_string e)

let deadline_error phase =
  Protocol.make_error "deadline-exceeded"
    (Printf.sprintf "request deadline expired %s" phase)

(* What the serial prepare pass leaves for the parallel wave: either a
   finished response, or a solve closure still to run. Everything that
   mutates server state (cache fills, counters, memo probes) happens in
   prepare; the fan-out only runs pure per-request solves. *)
type prepared =
  | Done of string
  | Todo of {
      line : string;
      id : Obs.Json.t;
      cancel : Sched.Cancel.t;
      work : unit -> string * (string * Sched.Problem.t) option;
          (** the pure per-request solve; also yields the session to
              check back into the warm pool (solo solves only) *)
    }

let note_error t =
  t.errors <- t.errors + 1;
  hit "serve.errors"

let note_deadline t =
  t.deadline_exceeded <- t.deadline_exceeded + 1;
  hit "serve.deadline_exceeded";
  note_error t

let note_crash t =
  t.task_crashes <- t.task_crashes + 1;
  hit "serve.task_crashes";
  note_error t

let prepare_inner t line =
  Obs.Failpoint.hit fp_decode;
  match Protocol.decode line with
  | Error (id, e) ->
      note_error t;
      Done (Protocol.error_response id e)
  | Ok { id; op } -> (
      match op with
      | Ping ->
          Done
            (Protocol.ok_response id
               [ ("protocol", Obs.Json.String Protocol.version) ])
      | Stats -> Done (Protocol.ok_response id (stats_fields t))
      | Shutdown ->
          t.stopping <- true;
          Done (Protocol.ok_response id [ ("stopping", Obs.Json.Bool true) ])
      | Solve { instance; algorithm; fault; timed; deadline_ms } -> (
          (* the deadline clock starts at admission: a budget of 0 is
             already expired, and context construction below counts
             against the budget *)
          let cancel =
            match deadline_ms with
            | None -> Sched.Cancel.none
            | Some ms -> Sched.Cancel.after ~budget_ms:(float_of_int ms)
          in
          if Sched.Cancel.expired cancel then begin
            note_deadline t;
            Done (Protocol.error_response id (deadline_error "at admission"))
          end
          else
            match
              if t.config.memo then Lru.find t.memo_tbl line else None
            with
            | Some response ->
                t.memo_hits <- t.memo_hits + 1;
                hit "serve.memo_hits";
                Done response
            | None -> (
                (* context resolution, group construction and admission
                   (with their possible rejections) are part of prepare so
                   server state has a single writer; only the pure solve
                   closure escapes onto the parallel wave *)
                match
                  match instance.Protocol.arrays with
                  | Some arrays ->
                      if timed <> None then
                        Protocol.reject
                          "\"timed\" replay is single-mesh only (no group \
                           simulator); drop the \"arrays\" field";
                      let gp = build_group_problem t instance arrays fault in
                      admit_bytes t (Multi.Group_problem.max_arena_bytes gp);
                      hit "serve.group_requests";
                      fun () -> (solve_group id gp ~cancel algorithm, None)
                  | None ->
                      let ctx = find_context t instance in
                      admit t ctx;
                      (* warm checkout: the serial prepare pass owns the
                         table, so two same-key requests in one wave race
                         on nothing — the second simply opens cold *)
                      let key = context_key instance in
                      let base =
                        match Lru.find t.warm key with
                        | Some p ->
                            Lru.remove t.warm key;
                            t.warm_sessions <- t.warm_sessions + 1;
                            hit "serve.warm_sessions";
                            Some p
                        | None -> None
                      in
                      fun () ->
                        solve id ctx ~key ~base ~cancel algorithm fault timed
                with
                | work ->
                    if Sched.Cancel.expired cancel then begin
                      note_deadline t;
                      Done
                        (Protocol.error_response id
                           (deadline_error "at admission"))
                    end
                    else Todo { line; id; cancel; work }
                | exception Protocol.Reject e ->
                    (if e.Protocol.code = "over-budget" then begin
                       t.rejected <- t.rejected + 1;
                       hit "serve.rejected"
                     end
                     else note_error t);
                    Done (Protocol.error_response id e))))

(* [prepare] is total: any exception the admission path leaks — a crash
   in a workload generator, a failpoint injection at [serve.decode] —
   becomes a typed [internal-error] response for that one request
   instead of killing the daemon. *)
let prepare t line =
  t.requests <- t.requests + 1;
  hit "serve.requests";
  match prepare_inner t line with
  | p -> p
  | exception Protocol.Reject e ->
      note_error t;
      Done (Protocol.error_response (Protocol.request_id line) e)
  | exception e ->
      note_crash t;
      Done
        (Protocol.error_response (Protocol.request_id line)
           (internal_error e))

let now () = Obs.Clock.now_s ()

type outcome =
  | Passthrough
  | Solved of string * (string * Sched.Problem.t) option
  | Failed
  | Deadlined
  | Crashed

(* [run_prepared] is total — the task boundary of the wave. A [Reject]
   is the protocol's typed failure; [Cancel.Expired] is a deadline
   firing at a poll point inside the solve; anything else is a crash,
   isolated to this request (typed [internal-error] with a backtrace)
   so it cannot poison the batch wave or the domain pool. Counters are
   deferred to the serial post-pass (the wave must not race on them). *)
let run_prepared _t = function
  | Done response -> (response, 0., Passthrough)
  | Todo { line; id; cancel; work } -> (
      let t0 = now () in
      if Sched.Cancel.expired cancel then
        ( Protocol.error_response id
            (deadline_error "before the solve started"),
          0.,
          Deadlined )
      else
        match
          Obs.Failpoint.hit fp_solve;
          work ()
        with
        | response, session ->
            (response, now () -. t0, Solved (line, session))
        | exception Protocol.Reject e ->
            (Protocol.error_response id e, now () -. t0, Failed)
        | exception Sched.Cancel.Expired ->
            ( Protocol.error_response id (deadline_error "during the solve"),
              now () -. t0,
              Deadlined )
        | exception e ->
            ( Protocol.error_response id (internal_error e),
              now () -. t0,
              Crashed ))

(* [process_batch t lines] answers one wave of request lines, in order.
   Decode, admission control and cache management run serially; the
   per-request solves fan out on the engine's domain pool. Returns each
   response paired with its solve latency in seconds (0 for non-solve
   ops). Responses depend only on the request, never on batching or
   [jobs], so a client cannot observe the wave boundaries. *)
let process_batch t lines =
  t.batches <- t.batches + 1;
  hit "serve.batches";
  let prepared = Array.of_list (List.map (prepare t) lines) in
  let results =
    match
      Sched.Engine.map ~jobs:t.config.jobs (Array.length prepared) (fun i ->
          run_prepared t prepared.(i))
    with
    | r -> r
    | exception _ ->
        (* the wave died at the engine's task boundary, not inside a
           body ([run_prepared] is total — this is the [engine.task]
           failpoint or an engine bug): re-run it serially. The work
           closures are deterministic and server state is only written
           in the post-pass below, so the re-run answers identically. *)
        t.wave_retries <- t.wave_retries + 1;
        hit "serve.wave_retries";
        Array.init (Array.length prepared) (fun i ->
            run_prepared t prepared.(i))
  in
  (* memo inserts, warm check-ins and failure accounting back on the
     single writer *)
  let observe dt =
    if !Obs.enabled then
      Obs.Metrics.observe "serve.solve_us" (int_of_float (dt *. 1e6))
  in
  Array.iter
    (fun (response, dt, outcome) ->
      match outcome with
      | Passthrough -> ()
      | Solved (line, session) ->
          observe dt;
          if t.config.memo then
            note_evictions t
              (Lru.add t.memo_tbl line response
                 ~bytes:
                   (String.length line + String.length response + 64));
          (match session with
          | Some (key, problem) ->
              (* first same-key solve of the wave wins the slot; later
                 sessions are dropped rather than replacing it *)
              if not (Lru.mem t.warm key) then
                note_evictions t
                  (Lru.add t.warm key problem
                     ~bytes:(Sched.Problem.max_arena_bytes problem))
          | None -> ())
      | Failed ->
          observe dt;
          note_error t
      | Deadlined ->
          observe dt;
          note_deadline t
      | Crashed ->
          observe dt;
          note_crash t)
    results;
  List.map (fun (r, dt, _) -> (r, dt)) (Array.to_list results)

let handle_line t line =
  match process_batch t [ line ] with
  | [ (response, _) ] -> response
  | _ -> assert false

let stopping t = t.stopping
let stats_json t = Obs.Json.Obj (stats_fields t)

(* ---------------------------------------------------------------- *)
(* The daemon loop                                                   *)
(* ---------------------------------------------------------------- *)

(* Raw-fd line reader: [in_channel] cannot tell us whether more input is
   already buffered, and greedy batching needs exactly that — drain what
   has arrived, block only when idle. The reader also enforces the
   request line cap: a line growing past [limit] bytes is discarded as
   it streams in (the buffer never holds more than [limit] bytes of one
   line), and surfaces as [Too_long] once its terminating newline — or
   end of input — arrives. *)
type item = Req of string | Too_long

type reader = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  chunk : Bytes.t;
  limit : int;
  mutable eof : bool;
  mutable discarding : bool; (* inside an over-limit line, dropping bytes *)
}

let reader ~limit fd =
  {
    fd;
    buf = Buffer.create 4096;
    chunk = Bytes.create 65536;
    limit;
    eof = false;
    discarding = false;
  }

(* Pop one complete item off the buffer; [None] means more input is
   needed (any over-limit prefix has already been dropped). *)
let buffered_item r =
  let s = Buffer.contents r.buf in
  match String.index_opt s '\n' with
  | Some i ->
      Buffer.clear r.buf;
      Buffer.add_substring r.buf s (i + 1) (String.length s - i - 1);
      if r.discarding then begin
        r.discarding <- false;
        Some Too_long
      end
      else if i > r.limit then Some Too_long
      else Some (Req (String.sub s 0 i))
  | None ->
      if (not r.discarding) && String.length s > r.limit then begin
        (* over the cap with no newline in sight: drop the bytes now so
           a hostile endless line cannot grow the buffer unboundedly *)
        Buffer.clear r.buf;
        r.discarding <- true
      end
      else if r.discarding then Buffer.clear r.buf;
      None

let refill r =
  match
    let want = Obs.Failpoint.clamp fp_read (Bytes.length r.chunk) in
    Obs.Failpoint.hit fp_read;
    Unix.read r.fd r.chunk 0 want
  with
  | 0 ->
      r.eof <- true;
      false
  | n ->
      Buffer.add_subbytes r.buf r.chunk 0 n;
      true
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> true
  | exception Obs.Failpoint.Injected _ ->
      (* an injected read fault models the client connection dying *)
      r.eof <- true;
      false
  | exception
      Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
      r.eof <- true;
      false

(* Blocking read of one item; [None] at end of input. A final line
   without a trailing newline still counts. *)
let rec read_item_block r =
  match buffered_item r with
  | Some l -> Some l
  | None ->
      if r.eof then
        if r.discarding then begin
          r.discarding <- false;
          Buffer.clear r.buf;
          Some Too_long
        end
        else if Buffer.length r.buf > 0 then begin
          let l = Buffer.contents r.buf in
          Buffer.clear r.buf;
          if String.length l > r.limit then Some Too_long else Some (Req l)
        end
        else None
      else begin
        ignore (refill r);
        read_item_block r
      end

(* One item only if it is already available without blocking. *)
let rec read_item_avail r =
  match buffered_item r with
  | Some l -> Some l
  | None ->
      if r.eof then None
      else begin
        match Unix.select [ r.fd ] [] [] 0. with
        | [], _, _ -> None
        | _ -> if refill r then read_item_avail r else None
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_item_avail r
      end

(* Complete lines already sitting in the buffer — the backlog the
   overload control sheds against. *)
let buffered_lines r =
  let s = Buffer.contents r.buf in
  let n = ref 0 in
  String.iter (fun c -> if c = '\n' then incr n) s;
  !n

(* ---- hardened response writer ---- *)

exception Client_gone

(* Write the whole string to the (non-blocking) fd: EINTR retries,
   EAGAIN waits — but only up to [timeout_ms] per response, so one
   slow-reading (or stalled) client cannot wedge the daemon — and
   EPIPE/ECONNRESET surface as [Client_gone] for a clean disconnect
   instead of an unhandled signal or exception. *)
let write_all ~timeout_ms fd s =
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let deadline = Obs.Clock.now_s () +. (timeout_ms /. 1000.) in
  let rec go off =
    if off < len then begin
      (match Obs.Failpoint.hit fp_write with
      | () -> ()
      | exception Obs.Failpoint.Injected _ -> raise Client_gone);
      let want = Obs.Failpoint.clamp fp_write (len - off) in
      match Unix.write fd b off want with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
        ->
          let remain = deadline -. Obs.Clock.now_s () in
          if remain <= 0. then raise Client_gone
          else begin
            (match Unix.select [] [ fd ] [] (Float.min remain 0.2) with
            | _ -> ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
            go off
          end
      | exception
          Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _)
        ->
          raise Client_gone
    end
  in
  go 0

(* ---- overload and overflow responses ---- *)

let overflow_response t =
  t.requests <- t.requests + 1;
  t.line_overflows <- t.line_overflows + 1;
  hit "serve.requests";
  hit "serve.line_overflows";
  note_error t;
  Protocol.error_response Obs.Json.Null
    (Protocol.make_error "parse-error"
       (Printf.sprintf "request line exceeds %d bytes"
          t.config.max_line_bytes))

let overloaded_error t =
  let retry = max 1 (int_of_float (Float.ceil t.last_wave_ms)) in
  Protocol.make_error "overloaded"
    ~extra:[ ("retry_after_ms", Obs.Json.Int retry) ]
    (Printf.sprintf "server backlog exceeds %d requests" t.config.max_queue)

(* Shed buffered backlog beyond [max_queue]: the oldest excess lines are
   answered [overloaded] (with a retry hint from the last wave's
   latency) without being decoded or solved, so a flooding client costs
   one JSON id-probe per shed line instead of a solve. The newest
   [max_queue] lines stay queued for later waves; response order still
   follows arrival order. *)
let shed_backlog t r =
  let rec go acc =
    if buffered_lines r <= t.config.max_queue then List.rev acc
    else
      match buffered_item r with
      | None -> List.rev acc
      | Some Too_long -> go (overflow_response t :: acc)
      | Some (Req line) ->
          t.requests <- t.requests + 1;
          t.overloaded <- t.overloaded + 1;
          hit "serve.requests";
          hit "serve.overloaded";
          note_error t;
          go
            (Protocol.error_response (Protocol.request_id line)
               (overloaded_error t)
            :: acc)
  in
  go []

(* Answer one wave of items in arrival order: over-limit lines get their
   typed rejection inline, everything else goes through the batch. *)
let answer_items t items =
  let lines =
    List.filter_map (function Req l -> Some l | Too_long -> None) items
  in
  let solved = ref (process_batch t lines) in
  List.map
    (function
      | Too_long -> overflow_response t
      | Req _ -> (
          match !solved with
          | (resp, _) :: rest ->
              solved := rest;
              resp
          | [] -> assert false))
    items

(* [run t ~input ~output] is the daemon: read request lines from
   [input], write response lines to [output] in order, batching whatever
   has already arrived (up to [config.batch]) onto one wave so
   compatible requests share hot contexts and the domain pool. Backlog
   beyond [config.max_queue] is shed with typed [overloaded] responses.
   Returns on end of input, after answering a shutdown op (draining the
   in-flight wave first), or when the client stops reading responses
   ([write_timeout_ms] per response, EPIPE, or a closed fd). *)
let run t ~input ~output =
  (* a client closing the response pipe must surface as EPIPE on write,
     not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  Printexc.record_backtrace true;
  let r = reader ~limit:t.config.max_line_bytes input in
  (try Unix.set_nonblock output with Unix.Unix_error _ -> ());
  Fun.protect
    ~finally:(fun () ->
      try Unix.clear_nonblock output with Unix.Unix_error _ -> ())
  @@ fun () ->
  let write s = write_all ~timeout_ms:t.config.write_timeout_ms output s in
  try
    let rec loop () =
      if not (stopping t) then
        match read_item_block r with
        | None -> ()
        | Some first ->
            let rec gather acc k =
              if k >= t.config.batch then List.rev acc
              else
                match read_item_avail r with
                | None -> List.rev acc
                | Some item -> gather (item :: acc) (k + 1)
            in
            let items = gather [ first ] 1 in
            let shed = shed_backlog t r in
            let t0 = now () in
            let responses = answer_items t items in
            t.last_wave_ms <- Float.max 1. ((now () -. t0) *. 1000.);
            List.iter (fun resp -> write (resp ^ "\n")) responses;
            List.iter (fun resp -> write (resp ^ "\n")) shed;
            loop ()
    in
    loop ()
  with Client_gone -> hit "serve.client_gone"
