(** Byte-accounted LRU cache — the bounded form of every server-side
    table ({!Server}'s contexts, response memo and warm-session pool).

    Each entry carries a caller-supplied byte weight; {!add} evicts from
    the least-recently-used end until the new entry fits the byte
    budget, and returns what it evicted so the caller can cascade
    (dropping a context also drops the warm sessions built over it). An
    entry heavier than the whole budget is not cached at all — caching
    it would evict everything for a value that can never be hit again
    before it is itself evicted.

    Not thread-safe: the serve path mutates its caches only from the
    serial prepare/post passes (single writer), so the structure carries
    no lock. *)

type 'a t

(** [create ~budget] is an empty cache holding at most [budget] bytes
    (a non-positive budget caches nothing).*)
val create : budget:int -> 'a t

val budget : 'a t -> int

(** [used_bytes t] is the sum of the weights of the live entries. *)
val used_bytes : 'a t -> int

(** [length t] is the number of live entries. *)
val length : 'a t -> int

(** [evictions t] counts entries evicted by {!add} since [create]
    (explicit {!remove}s are not counted). *)
val evictions : 'a t -> int

(** [find t key] is the entry's value and marks it most recently
    used. *)
val find : 'a t -> string -> 'a option

(** [peek t key] is {!find} without the recency touch. *)
val peek : 'a t -> string -> 'a option

val mem : 'a t -> string -> bool

(** [add t key v ~bytes] inserts (or replaces — replacement does not
    count as an eviction) the entry, marks it most recently used, and
    evicts least-recently-used entries until the budget holds; the
    evicted [(key, value)] pairs are returned in eviction order
    (least-recently-used first). When [bytes] alone exceeds the budget
    the entry is {e not}
    inserted and nothing is evicted.
    @raise Invalid_argument when [bytes < 0]. *)
val add : 'a t -> string -> 'a -> bytes:int -> (string * 'a) list

(** [remove t key] drops the entry if present (not an eviction). *)
val remove : 'a t -> string -> unit

(** [iter f t] folds over live entries, most-recently-used first. *)
val iter : (string -> 'a -> unit) -> 'a t -> unit
