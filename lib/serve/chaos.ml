(* The chaos harness runs the real daemon loop — [Server.run] in a
   spawned domain over Unix pipes — never a mocked transport: the
   hardening under test lives in the reader, the writer and the wave
   machinery, and a fake pipe would test none of it. Episodes are
   sequential (failpoint schedules are process-global), and every
   schedule is seeded, so a run is reproducible end to end. *)

let default_script ~n =
  let algos =
    [| "scds"; "lomcds"; "gomcds"; "lomcds-grouped"; "gomcds-grouped" |]
  in
  List.init n (fun i ->
      Printf.sprintf
        {|{"id":%d,"workload":"1","size":16,"mesh":{"rows":16,"cols":16},"algorithm":"%s"}|}
        i
        algos.(i mod Array.length algos))

(* context churn for the cache-pressure episode: four distinct instance
   keys cycling, so a small budget must evict *)
let pressure_script ~n =
  List.init n (fun i ->
      Printf.sprintf {|{"id":%d,"workload":"1","size":%d,"algorithm":"scds"}|}
        i
        (6 + (2 * (i mod 4))))

(* append a field to a request line (used to graft [deadline_ms] onto
   script lines without disturbing the rest of the request) *)
let with_field line key v =
  match Obs.Json.parse line with
  | Ok (Obs.Json.Obj fields) ->
      Obs.Json.to_string (Obs.Json.Obj (fields @ [ (key, v) ]))
  | Ok _ | Error _ -> line

let typed_codes =
  [
    "parse-error";
    "bad-request";
    "over-budget";
    "solve-error";
    "deadline-exceeded";
    "overloaded";
    "internal-error";
  ]

(* ---------------------------------------------------------------- *)
(* Episode plumbing                                                  *)
(* ---------------------------------------------------------------- *)

type behavior = Read_to_eof | Hang_up_after of int

type episode_run = {
  requests : int;
  responses : string list; (* in arrival order *)
  complete : bool; (* client read to EOF (vs hung up early) *)
  server_error : string option; (* an exception escaping Server.run *)
  stats : (string * Obs.Json.t) list;
  fired : (string * int * int) list; (* (site, hits, fired) *)
}

let write_fd_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* EPIPE-tolerant: the server closing its input early (crash under
   test, shutdown) must not wedge the feeder *)
let feed fd lines =
  (try List.iter (fun l -> write_fd_all fd (l ^ "\n")) lines
   with Unix.Unix_error ((Unix.EPIPE | Unix.EBADF), _, _) -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let run_episode ~config ~failpoints ~behavior script =
  Obs.Failpoint.clear ();
  (match failpoints with
  | None -> ()
  | Some spec -> Obs.Failpoint.configure spec);
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  let server = Server.create ~config () in
  let total_bytes =
    List.fold_left (fun a l -> a + String.length l + 1) 0 script
  in
  (* a small script is pre-buffered in the pipe before the server even
     starts — that makes backlog (and so the overload episode's
     shedding) deterministic; a big one gets a feeder domain *)
  let feeder =
    if total_bytes <= 32768 then begin
      feed req_w script;
      None
    end
    else Some (Domain.spawn (fun () -> feed req_w script))
  in
  let srv =
    Domain.spawn (fun () ->
        let r =
          match Server.run server ~input:req_r ~output:resp_w with
          | () -> None
          | exception e -> Some (Printexc.to_string e)
        in
        (try Unix.close resp_w with Unix.Unix_error _ -> ());
        (try Unix.close req_r with Unix.Unix_error _ -> ());
        r)
  in
  let stop_after =
    match behavior with Hang_up_after k -> k | Read_to_eof -> max_int
  in
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let responses = ref [] in
  let n_resp = ref 0 in
  let hung_up = ref false in
  (try
     let rec drain () =
       let s = Buffer.contents buf in
       match String.index_opt s '\n' with
       | Some i when !n_resp < stop_after ->
           responses := String.sub s 0 i :: !responses;
           incr n_resp;
           Buffer.clear buf;
           Buffer.add_substring buf s (i + 1) (String.length s - i - 1);
           drain ()
       | _ -> ()
     in
     let rec loop () =
       if !n_resp >= stop_after then begin
         (* the adversarial client: vanish without reading the rest *)
         Unix.close resp_r;
         hung_up := true
       end
       else
         match Unix.read resp_r chunk 0 (Bytes.length chunk) with
         | 0 -> ()
         | k ->
             Buffer.add_subbytes buf chunk 0 k;
             drain ();
             loop ()
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
     in
     loop ()
   with Unix.Unix_error _ -> ());
  let server_error = Domain.join srv in
  (match feeder with Some d -> Domain.join d | None -> ());
  if not !hung_up then (try Unix.close resp_r with Unix.Unix_error _ -> ());
  let stats =
    match Server.stats_json server with Obs.Json.Obj f -> f | _ -> []
  in
  let fired = Obs.Failpoint.stats () in
  Obs.Failpoint.clear ();
  {
    requests = List.length script;
    responses = List.rev !responses;
    complete = not !hung_up;
    server_error;
    stats;
    fired;
  }

(* ---------------------------------------------------------------- *)
(* Invariant checking                                                *)
(* ---------------------------------------------------------------- *)

(* What each script position owes the client:
   - [Identical r]: if the response is [ok] its bytes equal the one-shot
     baseline [r]; a typed error (injected crash, shed, deadline) is
     also acceptable — injection sites fire nondeterministically across
     a parallel wave, so which request absorbs the fault is not fixed.
   - [Code c]: must be the typed error [c] (a deterministic rejection —
     an expired-at-admission deadline, an oversized line). *)
type expect = Identical of string | Code of string

let response_fields line =
  match Obs.Json.parse line with
  | Ok (Obs.Json.Obj f) -> Some f
  | Ok _ | Error _ -> None

let response_ok fields =
  match List.assoc_opt "ok" fields with
  | Some (Obs.Json.Bool b) -> Some b
  | _ -> None

let error_code fields =
  match List.assoc_opt "error" fields with
  | Some (Obs.Json.Obj e) -> (
      match List.assoc_opt "code" e with
      | Some (Obs.Json.String c) -> Some c
      | _ -> None)
  | _ -> None

let stat_int stats k =
  match List.assoc_opt k stats with Some (Obs.Json.Int i) -> i | _ -> 0

type verdict = {
  name : string;
  pass : bool;
  failures : string list;
  ok_count : int;
  codes : (string * int) list; (* error-code histogram *)
  run : episode_run;
}

let check ~name ~expected ?(require_fired = false) ?(max_cache_bytes = None)
    (run : episode_run) =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  (match run.server_error with
  | Some e -> fail "daemon crashed: %s" e
  | None -> ());
  let n_resp = List.length run.responses in
  if run.complete && n_resp <> run.requests then
    fail "answered %d of %d requests" n_resp run.requests;
  if (not run.complete) && n_resp > run.requests then
    fail "more responses (%d) than requests (%d)" n_resp run.requests;
  let ok_count = ref 0 in
  let codes = Hashtbl.create 8 in
  List.iteri
    (fun i (resp, exp) ->
      match response_fields resp with
      | None -> fail "response %d is not a JSON object: %s" i resp
      | Some fields -> (
          match response_ok fields with
          | None -> fail "response %d has no ok field" i
          | Some true -> (
              incr ok_count;
              match exp with
              | Identical r ->
                  if resp <> r then
                    fail "response %d diverges from the one-shot baseline" i
              | Code c ->
                  fail "response %d should be a typed %s, got ok" i c)
          | Some false -> (
              match error_code fields with
              | None -> fail "response %d is an error without a code" i
              | Some c ->
                  Hashtbl.replace codes c
                    (1 + Option.value (Hashtbl.find_opt codes c) ~default:0);
                  if not (List.mem c typed_codes) then
                    fail "response %d has unknown error code %S" i c;
                  (match exp with
                  | Code want when c <> want ->
                      fail "response %d: expected code %s, got %s" i want c
                  | _ -> ()))))
    (* pair positionally (response order is arrival order in every
       episode); truncate both sides so a count mismatch — already
       reported above — cannot crash the harness *)
    (let k = min n_resp (List.length expected) in
     List.combine
       (List.filteri (fun i _ -> i < k) run.responses)
       (List.filteri (fun i _ -> i < k) expected));
  (if require_fired then
     match List.exists (fun (_, _, f) -> f > 0) run.fired with
     | true -> ()
     | false -> fail "armed failpoints never fired");
  (match max_cache_bytes with
  | None -> ()
  | Some budget ->
      let used = stat_int run.stats "cache_bytes" in
      if used > budget then
        fail "caches hold %d bytes, budget is %d" used budget);
  {
    name;
    pass = !failures = [];
    failures = List.rev !failures;
    ok_count = !ok_count;
    codes =
      List.sort compare (Hashtbl.fold (fun k v a -> (k, v) :: a) codes []);
    run;
  }

let verdict_json v =
  Obs.Json.Obj
    [
      ("episode", Obs.Json.String v.name);
      ("pass", Obs.Json.Bool v.pass);
      ("requests", Obs.Json.Int v.run.requests);
      ("responses", Obs.Json.Int (List.length v.run.responses));
      ("ok", Obs.Json.Int v.ok_count);
      ( "error_codes",
        Obs.Json.Obj (List.map (fun (c, n) -> (c, Obs.Json.Int n)) v.codes) );
      ( "failpoints",
        Obs.Json.Obj
          (List.filter_map
             (fun (site, hits, fired) ->
               if hits = 0 then None
               else
                 Some
                   ( site,
                     Obs.Json.Obj
                       [
                         ("hits", Obs.Json.Int hits);
                         ("fired", Obs.Json.Int fired);
                       ] ))
             v.run.fired) );
      ("cache_bytes", Obs.Json.Int (stat_int v.run.stats "cache_bytes"));
      ( "cache_evictions",
        Obs.Json.Int (stat_int v.run.stats "cache_evictions") );
      ( "failures",
        Obs.Json.List (List.map (fun m -> Obs.Json.String m) v.failures) );
    ]

(* ---------------------------------------------------------------- *)
(* The run                                                           *)
(* ---------------------------------------------------------------- *)

let run ?(seed = 0) ?(jobs = 2) ?(requests = 20) ?script () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let base_script =
    match script with Some s -> s | None -> default_script ~n:requests
  in
  let d = Server.default_config () in
  let base = { d with Server.jobs } in
  (* the one-shot baseline: each script line solved on its own fresh
     daemonless server — what the acceptance criterion compares served
     bytes against. Failpoints must be dark for it. *)
  let baseline config script =
    Obs.Failpoint.clear ();
    let t = Server.create ~config:{ config with Server.memo = false } () in
    List.map (fun l -> Server.handle_line t l) script
  in
  let expected_base = List.map (fun r -> Identical r) (baseline base base_script) in
  let half = max 1 (List.length base_script / 2) in
  let episodes =
    [
      ( "clean",
        fun () ->
          check ~name:"clean" ~expected:expected_base
            (run_episode ~config:base ~failpoints:None ~behavior:Read_to_eof
               base_script) );
      ( "solver-raise",
        fun () ->
          check ~name:"solver-raise" ~expected:expected_base
            ~require_fired:true
            (run_episode ~config:base
               ~failpoints:(Some "serve.solve=raise,n=2")
               ~behavior:Read_to_eof base_script) );
      ( "decode-raise",
        fun () ->
          check ~name:"decode-raise" ~expected:expected_base
            ~require_fired:true
            (run_episode ~config:base
               ~failpoints:(Some "serve.decode=raise,n=1")
               ~behavior:Read_to_eof base_script) );
      ( "engine-raise",
        fun () ->
          check ~name:"engine-raise" ~expected:expected_base
            ~require_fired:true
            (run_episode ~config:base
               ~failpoints:(Some "engine.task=raise,n=1")
               ~behavior:Read_to_eof base_script) );
      ( "io-chaos",
        fun () ->
          check ~name:"io-chaos" ~expected:expected_base ~require_fired:true
            (run_episode ~config:base
               ~failpoints:
                 (Some
                    (Printf.sprintf
                       "serve.read=short_read,p=0.5,seed=%d;serve.write=partial_write,p=0.5,seed=%d;serve.solve=delay:1,p=0.2,seed=%d"
                       seed (seed + 1) (seed + 2)))
               ~behavior:Read_to_eof base_script) );
      ( "deadline",
        fun () ->
          (* every fourth request expires at admission; the rest carry a
             budget no solve here approaches *)
          let script =
            List.mapi
              (fun i l ->
                with_field l "deadline_ms"
                  (Obs.Json.Int (if i mod 4 = 3 then 0 else 600_000)))
              base_script
          in
          let expected =
            List.mapi
              (fun i e ->
                if i mod 4 = 3 then Code "deadline-exceeded" else e)
              expected_base
          in
          check ~name:"deadline" ~expected
            (run_episode ~config:base ~failpoints:None ~behavior:Read_to_eof
               script) );
      ( "oversize",
        fun () ->
          let cap = 2048 in
          let garbage = String.make (4 * cap) 'x' in
          let script =
            List.filteri (fun i _ -> i < half) base_script
            @ [ garbage ]
            @ List.filteri (fun i _ -> i >= half) base_script
          in
          let expected =
            List.filteri (fun i _ -> i < half) expected_base
            @ [ Code "parse-error" ]
            @ List.filteri (fun i _ -> i >= half) expected_base
          in
          check ~name:"oversize" ~expected
            (run_episode
               ~config:{ base with Server.max_line_bytes = cap }
               ~failpoints:None ~behavior:Read_to_eof script) );
      ( "overload",
        fun () ->
          (* a pre-buffered flood against a 2-deep queue: waves of 2,
             everything beyond the queue shed as typed [overloaded] *)
          check ~name:"overload" ~expected:expected_base
            (run_episode
               ~config:{ base with Server.batch = 2; max_queue = 2 }
               ~failpoints:None ~behavior:Read_to_eof base_script) );
      ( "disconnect",
        fun () ->
          check ~name:"disconnect" ~expected:expected_base
            (run_episode
               ~config:{ base with Server.write_timeout_ms = 500. }
               ~failpoints:None ~behavior:(Hang_up_after half) base_script) );
      ( "pressure",
        fun () ->
          let budget = 32 * 1024 in
          let config = { base with Server.max_cache_bytes = budget } in
          let script = pressure_script ~n:(max 8 requests) in
          let expected =
            List.map (fun r -> Identical r) (baseline config script)
          in
          check ~name:"pressure" ~expected ~max_cache_bytes:(Some budget)
            (run_episode ~config ~failpoints:None ~behavior:Read_to_eof
               script) );
    ]
  in
  let verdicts = List.map (fun (_, f) -> f ()) episodes in
  let pass = List.for_all (fun v -> v.pass) verdicts in
  let report =
    Obs.Json.Obj
      [
        ("pass", Obs.Json.Bool pass);
        ("seed", Obs.Json.Int seed);
        ("jobs", Obs.Json.Int jobs);
        ("script_lines", Obs.Json.Int (List.length base_script));
        ("episodes", Obs.Json.List (List.map verdict_json verdicts));
      ]
  in
  (pass, report)
