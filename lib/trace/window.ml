type kind = Read | Write

type t = {
  n_data : int;
  (* per datum, per kind: processor rank -> reference count *)
  reads : (int, int) Hashtbl.t array;
  writes_ : (int, int) Hashtbl.t array;
  (* dense combined (reads + writes) counts, indexed by processor rank and
     grown on demand; the source the separable cost kernel reads marginals
     from. [combined.(data).(proc)] is maintained incrementally by [add]
     (and therefore summed by [merge], which goes through [add]). *)
  mutable combined : int array array;
  (* per-datum combined reference totals, maintained by [add] *)
  totals : int array;
}

let create ~n_data =
  if n_data <= 0 then invalid_arg "Window.create: n_data must be positive";
  {
    n_data;
    reads = Array.init n_data (fun _ -> Hashtbl.create 4);
    writes_ = Array.init n_data (fun _ -> Hashtbl.create 1);
    combined = Array.make n_data [||];
    totals = Array.make n_data 0;
  }

let n_data t = t.n_data

let check_data t data =
  if data < 0 || data >= t.n_data then
    invalid_arg (Printf.sprintf "Window: data id %d out of range" data)

let table t kind data =
  match kind with Read -> t.reads.(data) | Write -> t.writes_.(data)

let bump_combined t ~data ~proc ~count =
  let row = t.combined.(data) in
  let row =
    if proc < Array.length row then row
    else begin
      let grown = Array.make (max (proc + 1) (2 * Array.length row)) 0 in
      Array.blit row 0 grown 0 (Array.length row);
      t.combined.(data) <- grown;
      grown
    end
  in
  row.(proc) <- row.(proc) + count;
  t.totals.(data) <- t.totals.(data) + count

let add ?(kind = Read) t ~data ~proc ~count =
  check_data t data;
  if proc < 0 then invalid_arg "Window.add: negative processor rank";
  if count < 0 then invalid_arg "Window.add: negative count";
  if count > 0 then begin
    let tbl = table t kind data in
    (match Hashtbl.find_opt tbl proc with
    | Some c -> Hashtbl.replace tbl proc (c + count)
    | None -> Hashtbl.add tbl proc count);
    bump_combined t ~data ~proc ~count
  end

let profile_of_table tbl =
  Hashtbl.fold
    (fun proc count acc -> if count > 0 then (proc, count) :: acc else acc)
    tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let read_profile t data =
  check_data t data;
  profile_of_table t.reads.(data)

let write_profile t data =
  check_data t data;
  profile_of_table t.writes_.(data)

(* The dense row is naturally in ascending rank order, so the combined
   profile needs no hashtable copy and no sort. *)
let profile t data =
  check_data t data;
  let row = t.combined.(data) in
  let acc = ref [] in
  for proc = Array.length row - 1 downto 0 do
    if row.(proc) > 0 then acc := (proc, row.(proc)) :: !acc
  done;
  !acc

let iter_profile t data f =
  check_data t data;
  let row = t.combined.(data) in
  for proc = 0 to Array.length row - 1 do
    if row.(proc) > 0 then f ~proc ~count:row.(proc)
  done

let iter_kind_profile ~kind t data f =
  check_data t data;
  Hashtbl.iter
    (fun proc count -> if count > 0 then f ~proc ~count)
    (table t kind data)

let marginals t ~data ~cols ~rows =
  check_data t data;
  if cols <= 0 || rows <= 0 then
    invalid_arg "Window.marginals: mesh extents must be positive";
  let mx = Array.make cols 0 and my = Array.make rows 0 in
  let row = t.combined.(data) in
  for proc = 0 to Array.length row - 1 do
    let count = row.(proc) in
    if count > 0 then begin
      if proc >= cols * rows then
        invalid_arg
          (Printf.sprintf
             "Window.marginals: processor rank %d outside %dx%d mesh" proc
             rows cols);
      mx.(proc mod cols) <- mx.(proc mod cols) + count;
      my.(proc / cols) <- my.(proc / cols) + count
    end
  done;
  (mx, my)

let count_table tbl = Hashtbl.fold (fun _ c acc -> acc + c) tbl 0

let references t data =
  check_data t data;
  t.totals.(data)

let writes t data =
  check_data t data;
  count_table t.writes_.(data)

let total_references t = Array.fold_left ( + ) 0 t.totals

let referenced_data t =
  let acc = ref [] in
  for data = t.n_data - 1 downto 0 do
    if t.totals.(data) > 0 then acc := data :: !acc
  done;
  !acc

let is_empty t = Array.for_all (fun c -> c = 0) t.totals

let pour ~into src =
  Array.iteri
    (fun data tbl ->
      Hashtbl.iter
        (fun proc count -> add into ~kind:Read ~data ~proc ~count)
        tbl)
    src.reads;
  Array.iteri
    (fun data tbl ->
      Hashtbl.iter
        (fun proc count -> add into ~kind:Write ~data ~proc ~count)
        tbl)
    src.writes_

let merge a b =
  if a.n_data <> b.n_data then
    invalid_arg "Window.merge: mismatched data spaces";
  let m = create ~n_data:a.n_data in
  pour ~into:m a;
  pour ~into:m b;
  m

let copy t =
  let c = create ~n_data:t.n_data in
  pour ~into:c t;
  c

let merge_list = function
  | [] -> invalid_arg "Window.merge_list: empty list"
  | w :: ws -> List.fold_left merge (copy w) ws

let equal a b =
  a.n_data = b.n_data
  && begin
       let ok = ref true in
       for data = 0 to a.n_data - 1 do
         if
           read_profile a data <> read_profile b data
           || write_profile a data <> write_profile b data
         then ok := false
       done;
       !ok
     end

let max_proc t =
  let mx = ref (-1) in
  Array.iter
    (fun row ->
      for proc = Array.length row - 1 downto !mx + 1 do
        if row.(proc) > 0 && proc > !mx then mx := proc
      done)
    t.combined;
  !mx

let pp fmt t =
  let data = referenced_data t in
  Format.fprintf fmt "@[<v>window (%d data referenced, %d refs total)"
    (List.length data) (total_references t);
  List.iter
    (fun d ->
      Format.fprintf fmt "@ data %d:" d;
      List.iter
        (fun (p, c) -> Format.fprintf fmt " p%d x%d" p c)
        (profile t d);
      match write_profile t d with
      | [] -> ()
      | ws ->
          Format.fprintf fmt " (writes:";
          List.iter (fun (p, c) -> Format.fprintf fmt " p%d x%d" p c) ws;
          Format.fprintf fmt ")")
    data;
  Format.fprintf fmt "@]"
