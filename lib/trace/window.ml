type kind = Read | Write

type t = {
  n_data : int;
  (* per datum, per kind: processor rank -> reference count *)
  reads : (int, int) Hashtbl.t array;
  writes_ : (int, int) Hashtbl.t array;
  (* dense combined (reads + writes) counts, indexed by processor rank and
     grown on demand; the source the separable cost kernel reads marginals
     from. [combined.(data).(proc)] is maintained incrementally by [add]
     and summed row-wise by [merge]. *)
  mutable combined : int array array;
  (* per-datum combined reference totals, maintained by [add] *)
  totals : int array;
}

let create ~n_data =
  if n_data <= 0 then invalid_arg "Window.create: n_data must be positive";
  {
    n_data;
    reads = Array.init n_data (fun _ -> Hashtbl.create 4);
    writes_ = Array.init n_data (fun _ -> Hashtbl.create 1);
    combined = Array.make n_data [||];
    totals = Array.make n_data 0;
  }

let n_data t = t.n_data

let check_data t data =
  if data < 0 || data >= t.n_data then
    invalid_arg (Printf.sprintf "Window: data id %d out of range" data)

let table t kind data =
  match kind with Read -> t.reads.(data) | Write -> t.writes_.(data)

let bump_combined t ~data ~proc ~count =
  let row = t.combined.(data) in
  let row =
    if proc < Array.length row then row
    else begin
      let grown = Array.make (max (proc + 1) (2 * Array.length row)) 0 in
      Array.blit row 0 grown 0 (Array.length row);
      t.combined.(data) <- grown;
      grown
    end
  in
  row.(proc) <- row.(proc) + count;
  t.totals.(data) <- t.totals.(data) + count

let add ?(kind = Read) t ~data ~proc ~count =
  check_data t data;
  if proc < 0 then invalid_arg "Window.add: negative processor rank";
  if count < 0 then invalid_arg "Window.add: negative count";
  if count > 0 then begin
    let tbl = table t kind data in
    (match Hashtbl.find_opt tbl proc with
    | Some c -> Hashtbl.replace tbl proc (c + count)
    | None -> Hashtbl.add tbl proc count);
    bump_combined t ~data ~proc ~count
  end

let profile_of_table tbl =
  Hashtbl.fold
    (fun proc count acc -> if count > 0 then (proc, count) :: acc else acc)
    tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let read_profile t data =
  check_data t data;
  profile_of_table t.reads.(data)

let write_profile t data =
  check_data t data;
  profile_of_table t.writes_.(data)

(* The dense row is naturally in ascending rank order, so the combined
   profile needs no hashtable copy and no sort. *)
let profile t data =
  check_data t data;
  let row = t.combined.(data) in
  let acc = ref [] in
  for proc = Array.length row - 1 downto 0 do
    if row.(proc) > 0 then acc := (proc, row.(proc)) :: !acc
  done;
  !acc

let iter_profile t data f =
  check_data t data;
  let row = t.combined.(data) in
  for proc = 0 to Array.length row - 1 do
    if row.(proc) > 0 then f ~proc ~count:row.(proc)
  done

let iter_kind_profile ~kind t data f =
  check_data t data;
  Hashtbl.iter
    (fun proc count -> if count > 0 then f ~proc ~count)
    (table t kind data)

let marginals t ~data ~cols ~rows =
  check_data t data;
  if cols <= 0 || rows <= 0 then
    invalid_arg "Window.marginals: mesh extents must be positive";
  let mx = Array.make cols 0 and my = Array.make rows 0 in
  let row = t.combined.(data) in
  let size = cols * rows in
  (* track (x, y) incrementally instead of a div/mod per rank — the walk
     over the dense row is the hot half of every separable-kernel fill *)
  let x = ref 0 and y = ref 0 in
  for proc = 0 to Array.length row - 1 do
    let count = row.(proc) in
    if count > 0 then begin
      if proc >= size then
        invalid_arg
          (Printf.sprintf
             "Window.marginals: processor rank %d outside %dx%d mesh" proc
             rows cols);
      mx.(!x) <- mx.(!x) + count;
      my.(!y) <- my.(!y) + count
    end;
    incr x;
    if !x = cols then begin
      x := 0;
      incr y
    end
  done;
  (mx, my)

let count_table tbl = Hashtbl.fold (fun _ c acc -> acc + c) tbl 0

let references t data =
  check_data t data;
  t.totals.(data)

let writes t data =
  check_data t data;
  count_table t.writes_.(data)

let total_references t = Array.fold_left ( + ) 0 t.totals

let referenced_data t =
  let acc = ref [] in
  for data = t.n_data - 1 downto 0 do
    if t.totals.(data) > 0 then acc := data :: !acc
  done;
  !acc

let is_empty t = Array.for_all (fun c -> c = 0) t.totals

(* Merging sums the dense combined rows and totals directly and adds the
   kind tables entry-wise — no per-reference [add] round-trip through
   [bump_combined]. Equal to replaying every (proc, count) reference of
   [src] into [into] (the regression property in test/test_fastpath.ml):
   every operation is a commutative sum, so table iteration order is
   immaterial. *)
let merge_table ~into src =
  Hashtbl.iter
    (fun proc count ->
      match Hashtbl.find_opt into proc with
      | Some c -> Hashtbl.replace into proc (c + count)
      | None -> Hashtbl.add into proc count)
    src

let merge_into ~into src =
  for data = 0 to into.n_data - 1 do
    merge_table ~into:into.reads.(data) src.reads.(data);
    merge_table ~into:into.writes_.(data) src.writes_.(data);
    let srow = src.combined.(data) in
    let slen = Array.length srow in
    if slen > 0 then begin
      let row = into.combined.(data) in
      let row =
        if slen <= Array.length row then row
        else begin
          let grown = Array.make (max slen (2 * Array.length row)) 0 in
          Array.blit row 0 grown 0 (Array.length row);
          into.combined.(data) <- grown;
          grown
        end
      in
      for proc = 0 to slen - 1 do
        row.(proc) <- row.(proc) + srow.(proc)
      done
    end;
    into.totals.(data) <- into.totals.(data) + src.totals.(data)
  done

let merge a b =
  if a.n_data <> b.n_data then
    invalid_arg "Window.merge: mismatched data spaces";
  let m = create ~n_data:a.n_data in
  merge_into ~into:m a;
  merge_into ~into:m b;
  m

let copy t =
  let c = create ~n_data:t.n_data in
  merge_into ~into:c t;
  c

let merge_list = function
  | [] -> invalid_arg "Window.merge_list: empty list"
  | w :: ws -> List.fold_left merge (copy w) ws

let equal a b =
  a.n_data = b.n_data
  && begin
       let ok = ref true in
       for data = 0 to a.n_data - 1 do
         if
           read_profile a data <> read_profile b data
           || write_profile a data <> write_profile b data
         then ok := false
       done;
       !ok
     end

let max_proc t =
  let mx = ref (-1) in
  Array.iter
    (fun row ->
      for proc = Array.length row - 1 downto !mx + 1 do
        if row.(proc) > 0 && proc > !mx then mx := proc
      done)
    t.combined;
  !mx

let pp fmt t =
  let data = referenced_data t in
  Format.fprintf fmt "@[<v>window (%d data referenced, %d refs total)"
    (List.length data) (total_references t);
  List.iter
    (fun d ->
      Format.fprintf fmt "@ data %d:" d;
      List.iter
        (fun (p, c) -> Format.fprintf fmt " p%d x%d" p c)
        (profile t d);
      match write_profile t d with
      | [] -> ()
      | ws ->
          Format.fprintf fmt " (writes:";
          List.iter (fun (p, c) -> Format.fprintf fmt " p%d x%d" p c) ws;
          Format.fprintf fmt ")")
    data;
  Format.fprintf fmt "@]"
