let distinct_steps events =
  List.map (fun (e : Trace.event) -> e.step) events
  |> List.sort_uniq Int.compare

let build space events ~index_of_step =
  if events = [] then invalid_arg "Window_builder: empty event list";
  let n_data = Data_space.size space in
  let n_windows =
    List.fold_left
      (fun acc (e : Trace.event) ->
        let i = index_of_step e.step in
        if i < 0 then
          invalid_arg "Window_builder: negative window index computed";
        max acc (i + 1))
      0 events
  in
  let windows = Array.init n_windows (fun _ -> Window.create ~n_data) in
  List.iter
    (fun (e : Trace.event) ->
      Window.add windows.(index_of_step e.step) ~kind:e.kind ~data:e.data
        ~proc:e.proc ~count:1)
    events;
  Trace.create space (Array.to_list windows) |> Trace.drop_empty_windows

let per_step space events =
  let steps = distinct_steps events in
  let index = Hashtbl.create 64 in
  List.iteri (fun i s -> Hashtbl.add index s i) steps;
  build space events ~index_of_step:(Hashtbl.find index)

let fixed ~steps_per_window space events =
  if steps_per_window <= 0 then
    invalid_arg "Window_builder.fixed: steps_per_window must be positive";
  let steps = distinct_steps events in
  let index = Hashtbl.create 64 in
  List.iteri (fun i s -> Hashtbl.add index s (i / steps_per_window)) steps;
  build space events ~index_of_step:(Hashtbl.find index)

let by ~window_of_step space events =
  build space events ~index_of_step:window_of_step

(* Per-step processor-activity histogram, normalized to frequencies. *)
let step_histograms events =
  let steps = distinct_steps events in
  let index = Hashtbl.create 64 in
  List.iteri (fun i s -> Hashtbl.add index s i) steps;
  let n_procs =
    1 + List.fold_left (fun acc (e : Trace.event) -> max acc e.proc) 0 events
  in
  let histos = Array.make_matrix (List.length steps) n_procs 0. in
  List.iter
    (fun (e : Trace.event) ->
      let i = Hashtbl.find index e.step in
      histos.(i).(e.proc) <- histos.(i).(e.proc) +. 1.)
    events;
  let normalize h =
    let total = Array.fold_left ( +. ) 0. h in
    if total > 0. then Array.map (fun x -> x /. total) h else h
  in
  (steps, Array.map normalize histos)

(* Total variation is 1/2 the L1 distance of two frequency vectors, so it
   lies in [0, 1] — but the frequencies are quotients of event counts and
   rounding can push the sum a few ulps past 1, which would make even
   [threshold = 1.] split. Clamp to the mathematical range. *)
let total_variation p q =
  let acc = ref 0. in
  Array.iteri (fun i x -> acc := !acc +. abs_float (x -. q.(i))) p;
  Float.min 1. (0.5 *. !acc)

let adaptive ?(threshold = 0.25) space events =
  if threshold < 0. || threshold > 1. then
    invalid_arg "Window_builder.adaptive: threshold must be in [0, 1]";
  if events = [] then invalid_arg "Window_builder: empty event list";
  let steps, histos = step_histograms events in
  let n_procs = Array.length histos.(0) in
  (* running average of the current window's histograms *)
  let avg = Array.make n_procs 0. in
  let members = ref 0 in
  let assignment = Hashtbl.create 64 in
  let current = ref 0 in
  let reset_avg h =
    Array.blit h 0 avg 0 n_procs;
    members := 1
  in
  let absorb h =
    let n = float_of_int !members in
    Array.iteri (fun i x -> avg.(i) <- ((avg.(i) *. n) +. x) /. (n +. 1.)) h;
    incr members
  in
  List.iteri
    (fun i step ->
      if i = 0 then reset_avg histos.(0)
      else if total_variation avg histos.(i) > threshold then begin
        incr current;
        reset_avg histos.(i)
      end
      else absorb histos.(i);
      Hashtbl.add assignment step !current)
    steps;
  build space events ~index_of_step:(Hashtbl.find assignment)

let events_of_trace t =
  let out = ref [] in
  List.iteri
    (fun step w ->
      List.iter
        (fun data ->
          let emit kind (proc, count) =
            for _ = 1 to count do
              out := Trace.event ~kind ~step ~proc ~data () :: !out
            done
          in
          List.iter (emit Window.Read) (Window.read_profile w data);
          List.iter (emit Window.Write) (Window.write_profile w data))
        (Window.referenced_data w))
    (Trace.windows t);
  List.rev !out
