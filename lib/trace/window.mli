(** Execution windows.

    The paper divides an application's execution into windows; within a
    window, the {e processor reference string with respect to a datum} is the
    multiset of processors that require that datum. A window here stores, per
    datum, a sparse profile [(processor rank, reference count)]. Windows are
    mutable while being built and are treated as immutable afterwards.

    References carry an access {!kind}. The paper's cost model does not
    distinguish reads from writes — both cost the distance to the datum's
    center, and {!profile} (the combined view) is what every scheduler
    prices — but the split matters to coherence-aware extensions
    ({!Sched.Replicated}): reads may be served by any copy, writes pin the
    datum to a single copy. [add] defaults to [Read], so kind-oblivious
    code keeps working. *)

type kind = Read | Write

type t

(** [create ~n_data] is an empty window over data ids [0 .. n_data - 1].
    @raise Invalid_argument if [n_data <= 0]. *)
val create : n_data:int -> t

val n_data : t -> int

(** [add ?kind t ~data ~proc ~count] records [count] further references to
    [data] by processor [proc]; [kind] defaults to [Read].
    @raise Invalid_argument on out-of-range [data] or negative [count];
    [count = 0] is a no-op. *)
val add : ?kind:kind -> t -> data:int -> proc:int -> count:int -> unit

(** [profile t data] is the {e combined} (reads + writes) reference profile
    of [data], sorted by processor rank, zero counts omitted. This is the
    paper's processor reference string. *)
val profile : t -> int -> (int * int) list

(** [iter_profile t data f] applies [f ~proc ~count] to every combined
    (reads + writes) reference of [data] in ascending processor-rank order —
    the same pairs as {!profile}, with no intermediate list. Windows keep a
    dense per-datum weight row (maintained incrementally by {!add}, summed
    by {!merge}) precisely so hot folds can run allocation-free. *)
val iter_profile : t -> int -> (proc:int -> count:int -> unit) -> unit

(** [iter_kind_profile ~kind t data f] folds one kind's profile without
    materializing it. Iteration order is {e unspecified} (hashtable order) —
    use only for commutative folds such as cost sums. *)
val iter_kind_profile :
  kind:kind -> t -> int -> (proc:int -> count:int -> unit) -> unit

(** [marginals t ~data ~cols ~rows] projects the combined reference profile
    of [data] onto the two mesh axes of a [rows]×[cols] row-major mesh:
    a [cols]-long x-marginal and a [rows]-long y-marginal weight histogram
    ([mx.(x) = Σ_{y} count (x, y)] and symmetrically). Because x-y routing
    distance is separable per axis, these marginals determine the whole
    cost vector (see {!Sched.Cost}); one O(P) pass over the dense row
    builds both.
    @raise Invalid_argument if a referenced rank falls outside the mesh. *)
val marginals : t -> data:int -> cols:int -> rows:int -> int array * int array

(** [read_profile t data] / [write_profile t data] are the per-kind
    views. *)
val read_profile : t -> int -> (int * int) list

val write_profile : t -> int -> (int * int) list

(** [references t data] is the total combined reference count of [data]. *)
val references : t -> int -> int

(** [writes t data] is the total write count of [data]. *)
val writes : t -> int -> int

(** [total_references t] sums combined counts over all data. *)
val total_references : t -> int

(** [referenced_data t] lists data ids with at least one reference (of
    either kind), ascending. *)
val referenced_data : t -> int list

(** [is_empty t] is [true] iff no datum is referenced. *)
val is_empty : t -> bool

(** [merge a b] is a fresh window with summed per-kind profiles — the
    paper's window grouping primitive. @raise Invalid_argument if [n_data]
    differs. *)
val merge : t -> t -> t

(** [merge_list ws] merges one or more windows.
    @raise Invalid_argument on the empty list. *)
val merge_list : t list -> t

(** [copy t] is an independent duplicate. *)
val copy : t -> t

(** [equal a b] holds when every datum has the same read and write profiles
    in both. *)
val equal : t -> t -> bool

(** [max_proc t] is the largest processor rank referenced, or [-1] if the
    window is empty; used to validate windows against a mesh. *)
val max_proc : t -> int

val pp : Format.formatter -> t -> unit
