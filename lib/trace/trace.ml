type event = { step : int; proc : int; data : int; kind : Window.kind }

let event ?(kind = Window.Read) ~step ~proc ~data () =
  { step; proc; data; kind }
type t = {
  space : Data_space.t;
  windows : Window.t array;
  (* whole-execution window, computed on first demand; merging is a
     commutative sum per (datum, rank), so window order never matters *)
  mutable merged_memo : Window.t option;
}

let create space windows =
  let n = Data_space.size space in
  if windows = [] then invalid_arg "Trace.create: no windows";
  List.iter
    (fun w ->
      if Window.n_data w <> n then
        invalid_arg
          (Printf.sprintf
             "Trace.create: window over %d data, space has %d elements"
             (Window.n_data w) n))
    windows;
  { space; windows = Array.of_list windows; merged_memo = None }

let space t = t.space
let n_windows t = Array.length t.windows

let window t i =
  if i < 0 || i >= Array.length t.windows then
    invalid_arg (Printf.sprintf "Trace.window: index %d out of range" i);
  t.windows.(i)

let windows t = Array.to_list t.windows

let total_references t =
  Array.fold_left (fun acc w -> acc + Window.total_references w) 0 t.windows

let merged t =
  match t.merged_memo with
  | Some w -> w
  | None ->
      let w = Window.merge_list (windows t) in
      t.merged_memo <- Some w;
      w

let validate t mesh =
  let limit = Pim.Mesh.size mesh in
  Array.iteri
    (fun i w ->
      let mx = Window.max_proc w in
      if mx >= limit then
        invalid_arg
          (Printf.sprintf
             "Trace.validate: window %d references rank %d but mesh has %d \
              processors"
             i mx limit))
    t.windows

let remap_window ~n_data ~translate w =
  let out = Window.create ~n_data in
  List.iter
    (fun data ->
      List.iter
        (fun (proc, count) ->
          Window.add out ~kind:Window.Read ~data:(translate data) ~proc
            ~count)
        (Window.read_profile w data);
      List.iter
        (fun (proc, count) ->
          Window.add out ~kind:Window.Write ~data:(translate data) ~proc
            ~count)
        (Window.write_profile w data))
    (Window.referenced_data w);
  out

let append a b =
  let merged_space, translate = Data_space.concat a.space b.space in
  let n_data = Data_space.size merged_space in
  let keep = remap_window ~n_data ~translate:Fun.id in
  let move = remap_window ~n_data ~translate in
  let ws =
    List.map keep (windows a) @ List.map move (windows b)
  in
  create merged_space ws

let reversed t =
  {
    t with
    windows = Array.of_list (List.rev (windows t));
    merged_memo = None;
  }

let drop_empty_windows t =
  match List.filter (fun w -> not (Window.is_empty w)) (windows t) with
  | [] -> { t with windows = [| t.windows.(0) |]; merged_memo = None }
  | ws -> { t with windows = Array.of_list ws; merged_memo = None }

let pp fmt t =
  Format.fprintf fmt "trace over %a: %d windows, %d references" Data_space.pp
    t.space (n_windows t) (total_references t)
