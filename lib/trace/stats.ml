type profile = {
  drift : float;
  entropy : float;
  sharing_degree : float;
  reuse : float;
  windows : int;
  references : int;
}

let centroid mesh window ~data =
  let total = Window.references window data in
  if total = 0 then None
  else begin
    let sx = ref 0. and sy = ref 0. in
    Window.iter_profile window data (fun ~proc ~count ->
        let c = Pim.Mesh.coord_of_rank mesh proc in
        let w = float_of_int count in
        sx := !sx +. (w *. float_of_int c.Pim.Coord.x);
        sy := !sy +. (w *. float_of_int c.Pim.Coord.y));
    let n = float_of_int total in
    Some (!sx /. n, !sy /. n)
  end

let window_entropy mesh window =
  let m = Pim.Mesh.size mesh in
  let counts = Array.make m 0 in
  List.iter
    (fun data ->
      Window.iter_profile window data (fun ~proc ~count ->
          if proc < m then counts.(proc) <- counts.(proc) + count))
    (Window.referenced_data window);
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then 0.
  else
    Array.fold_left
      (fun acc c ->
        if c = 0 then acc
        else
          let p = float_of_int c /. float_of_int total in
          acc -. (p *. (Float.log p /. Float.log 2.)))
      0. counts

let profile mesh trace =
  let windows = Trace.windows trace in
  let n_windows = Trace.n_windows trace in
  let n_data = Data_space.size (Trace.space trace) in
  let references = Trace.total_references trace in
  (* entropy: reference-weighted mean over windows *)
  let entropy =
    if references = 0 then 0.
    else
      List.fold_left
        (fun acc w ->
          acc
          +. (float_of_int (Window.total_references w)
             *. window_entropy mesh w))
        0. windows
      /. float_of_int references
  in
  (* drift and reuse: walk each datum's referenced windows in order *)
  let drift_sum = ref 0. and drift_weight = ref 0. in
  let reused = ref 0 and uses = ref 0 in
  let sharing_sum = ref 0 and sharing_uses = ref 0 in
  for data = 0 to n_data - 1 do
    let prev = ref None in
    let seen_before = ref false in
    List.iter
      (fun w ->
        let refs = Window.references w data in
        if refs > 0 then begin
          incr uses;
          if !seen_before then incr reused;
          seen_before := true;
          let sharers = ref 0 in
          Window.iter_profile w data (fun ~proc:_ ~count:_ -> incr sharers);
          sharing_sum := !sharing_sum + !sharers;
          incr sharing_uses;
          let c = Option.get (centroid mesh w ~data) in
          (match !prev with
          | Some (px, py) ->
              let cx, cy = c in
              let weight = float_of_int refs in
              drift_sum :=
                !drift_sum
                +. (weight *. (abs_float (cx -. px) +. abs_float (cy -. py)));
              drift_weight := !drift_weight +. weight
          | None -> ());
          prev := Some c
        end)
      windows
  done;
  {
    drift = (if !drift_weight > 0. then !drift_sum /. !drift_weight else 0.);
    entropy;
    sharing_degree =
      (if !sharing_uses > 0 then
         float_of_int !sharing_sum /. float_of_int !sharing_uses
       else 0.);
    reuse =
      (if !uses > 0 then float_of_int !reused /. float_of_int !uses else 0.);
    windows = n_windows;
    references;
  }

let pp_profile fmt p =
  Format.fprintf fmt
    "drift=%.2f entropy=%.2fb sharing=%.2f reuse=%.2f (%d windows, %d refs)"
    p.drift p.entropy p.sharing_degree p.reuse p.windows p.references
