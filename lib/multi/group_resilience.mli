(** Reschedule-on-failure execution for multi-array groups.

    The group-tier analogue of {!Sched.Resilience}: execute a planned
    group schedule window by window while fault {e events} land mid-run
    (typically whole-array deaths from {!Group_fault.inject}), and
    account what is actually paid under the group metric.

    At an event, every datum residing on a now-dead rank is {e evicted}
    — moved, at the group distance (routers and fabric ports outlive the
    compute, as in the single-array model) — and the remaining plan is
    {e repaired}: each dead center is remapped, per window, to the
    cheapest surviving global center for that (datum, window) (member
    cross cost + member-local cost row). With [reschedule] (the
    default), the suffix is additionally {e re-solved} — a fresh
    {!Group_problem} over the remaining windows under the accumulated
    fault, same algorithm — and each datum independently takes the
    cheaper of {e repaired} and {e re-solved} continuation, both priced
    by one routine (entry move from the datum's current position +
    suffix references + suffix movement). Because the ride-out run
    executes exactly the repaired continuation, rescheduling never pays
    more than riding it out on any single-event run; with multiple
    events the comparison is applied greedily at each event. *)

type event = { window : int; fault : Group_fault.t }

type report = {
  algorithm : Sched.Scheduler.algorithm;
  reschedule : bool;
  planned_cost : int;  (** cost of the original plan, no faults *)
  paid_cost : int;  (** what execution actually paid *)
  evicted : int;  (** data moved off dead ranks/arrays *)
  evicted_cost : int;  (** volume-weighted eviction movement *)
  reschedules : int;  (** events where >= 1 datum took the re-solve *)
}

(** [run ?reschedule ?events gp algorithm] plans on [gp] (whose own
    fault is the day-0 state) and executes through [events]. Events are
    applied before their window runs; several events on one window are
    unioned. Deterministic in the inputs.
    @raise Invalid_argument on an out-of-range event window or an event
    fault that leaves no member alive. *)
val run :
  ?reschedule:bool ->
  ?events:event list ->
  Group_problem.t ->
  Sched.Scheduler.algorithm ->
  report
