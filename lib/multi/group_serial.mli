(** Textual serialization of group schedules.

    The counterpart of {!Sched.Schedule_serial} for the multi-array
    tier; the group structure is embedded so a plan is self-contained:

    {v
    # pim-sched group-plan v1
    inter mesh 2 2 cost 10
    member 0 mesh 8 8
    member 1 torus 4 4
    shape <n_windows> <n_data>
    w 0 <global rank> ... (n_data ranks)
    w 1 ...
    v}

    Blank lines and [#] comments are ignored. *)

(** [to_string plan] renders it. *)
val to_string : Group_schedule.t -> string

(** [of_string s] parses a plan, reconstructing the group.
    @raise Failure with a line-numbered message on malformed input,
    out-of-range ranks, or missing windows/members. *)
val of_string : string -> Group_schedule.t

(** [save plan path] / [load path] — file wrappers.
    @raise Sys_error on I/O failure, [Failure] on parse errors. *)
val save : Group_schedule.t -> string -> unit

val load : string -> Group_schedule.t
