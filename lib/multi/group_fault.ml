(* Array-level failures ride next to an ordinary global-rank fault set:
   the member tier consumes its slice of the latter through
   [member_fault], the group tier consumes [arrays] directly. *)
type t = { arrays : int list; fault : Pim.Fault.t }

let none = { arrays = []; fault = Pim.Fault.none }
let is_none t = t.arrays = [] && Pim.Fault.is_none t.fault

let create ?(dead_arrays = []) ?(dead_nodes = []) ?(dead_links = []) () =
  {
    arrays = List.sort_uniq Int.compare dead_arrays;
    fault = Pim.Fault.create ~dead_nodes ~dead_links ();
  }

let dead_arrays t = t.arrays
let array_dead t i = List.mem i t.arrays
let n_dead_arrays t = List.length t.arrays
let node_fault t = t.fault

let kill_array t i =
  if array_dead t i then t
  else { t with arrays = List.sort Int.compare (i :: t.arrays) }

let union a b =
  {
    arrays = List.sort_uniq Int.compare (a.arrays @ b.arrays);
    fault = Pim.Fault.union a.fault b.fault;
  }

let member_fault t group m =
  if array_dead t m then Pim.Fault.none
  else begin
    let b = Array_group.base group m in
    let sz = Pim.Mesh.size (Array_group.member group m) in
    let local g = g - b in
    let dead_nodes =
      List.filter_map
        (fun g -> if g >= b && g < b + sz then Some (local g) else None)
        (Pim.Fault.dead_nodes t.fault)
    in
    let dead_links =
      List.filter_map
        (fun (a, c) ->
          if a >= b && a < b + sz && c >= b && c < b + sz then
            Some (local a, local c)
          else None)
        (Pim.Fault.dead_links t.fault)
    in
    Pim.Fault.create ~dead_nodes ~dead_links ()
  end

let rank_alive t group g =
  let m = Array_group.member_of_rank group g in
  (not (array_dead t m)) && not (Pim.Fault.node_dead t.fault g)

let alive_members t group =
  List.filter
    (fun m ->
      (not (array_dead t m))
      &&
      let b = Array_group.base group m in
      let sz = Pim.Mesh.size (Array_group.member group m) in
      let dead_in =
        List.length
          (List.filter
             (fun g -> g >= b && g < b + sz)
             (Pim.Fault.dead_nodes t.fault))
      in
      dead_in < sz)
    (List.init (Array_group.n_members group) Fun.id)

let validate t group =
  let n = Array_group.n_members group in
  List.iter
    (fun i ->
      if i < 0 || i >= n then
        invalid_arg
          (Printf.sprintf "Group_fault: dead array %d out of bounds (%d members)"
             i n))
    t.arrays;
  let sz = Array_group.size group in
  List.iter
    (fun g ->
      if g < 0 || g >= sz then
        invalid_arg
          (Printf.sprintf "Group_fault: dead rank %d out of bounds (size %d)" g
             sz))
    (Pim.Fault.dead_nodes t.fault);
  List.iter
    (fun (a, b) ->
      if a < 0 || a >= sz || b < 0 || b >= sz then
        invalid_arg
          (Printf.sprintf "Group_fault: dead link %d-%d out of bounds" a b);
      let ma, la = Array_group.local_of_rank group a in
      let mb, lb = Array_group.local_of_rank group b in
      if ma <> mb then
        invalid_arg
          (Printf.sprintf
             "Group_fault: dead link %d-%d crosses members %d and %d — the \
              fabric has no failable links; kill the array instead"
             a b ma mb);
      if not (List.mem lb (Pim.Mesh.neighbours (Array_group.member group ma) la))
      then
        invalid_arg
          (Printf.sprintf "Group_fault: dead link %d-%d is not a member link" a
             b))
    (Pim.Fault.dead_links t.fault);
  if alive_members t group = [] then
    invalid_arg "Group_fault: fault leaves no member able to host data"

let inject ~seed ~array_rate ~node_rate ~link_rate group =
  let check who r =
    if r < 0. || r > 1. then
      invalid_arg (Printf.sprintf "Group_fault.inject: %s must be in [0, 1]" who)
  in
  check "array_rate" array_rate;
  check "node_rate" node_rate;
  check "link_rate" link_rate;
  let st = Random.State.make [| seed |] in
  let n = Array_group.n_members group in
  let sz = Array_group.size group in
  (* fixed draw order — arrays, global ranks, member links — so every
     dead set is monotone in its rate, as in Pim.Fault.inject *)
  let array_draws = Array.init n (fun _ -> Random.State.float st 1.) in
  let node_draws = Array.init sz (fun _ -> Random.State.float st 1.) in
  let link_draws =
    List.concat
      (List.init n (fun m ->
           let mesh = Array_group.member group m in
           let b = Array_group.base group m in
           List.filter_map
             (fun (a, c) ->
               if a < c then Some ((b + a, b + c), Random.State.float st 1.)
               else None)
             (Pim.Mesh.links mesh)))
  in
  let array_dead = Array.map (fun d -> d < array_rate) array_draws in
  if Array.for_all Fun.id array_dead then begin
    let best = ref 0 in
    Array.iteri
      (fun i d -> if d > array_draws.(!best) then best := i)
      array_draws;
    array_dead.(!best) <- false
  end;
  let node_dead = Array.map (fun d -> d < node_rate) node_draws in
  (* every surviving array keeps at least one alive rank *)
  for m = 0 to n - 1 do
    if not array_dead.(m) then begin
      let b = Array_group.base group m in
      let msz = Pim.Mesh.size (Array_group.member group m) in
      let all_dead = ref true in
      for g = b to b + msz - 1 do
        if not node_dead.(g) then all_dead := false
      done;
      if !all_dead then begin
        let best = ref b in
        for g = b to b + msz - 1 do
          if node_draws.(g) > node_draws.(!best) then best := g
        done;
        node_dead.(!best) <- false
      end
    end
  done;
  let arrays = ref [] in
  for m = n - 1 downto 0 do
    if array_dead.(m) then arrays := m :: !arrays
  done;
  let dead_nodes = ref [] in
  for g = sz - 1 downto 0 do
    if node_dead.(g) then dead_nodes := g :: !dead_nodes
  done;
  let dead_links =
    List.filter_map
      (fun (l, d) -> if d < link_rate then Some l else None)
      link_draws
  in
  {
    arrays = !arrays;
    fault = Pim.Fault.create ~dead_nodes:!dead_nodes ~dead_links ();
  }

let pp fmt t =
  Format.fprintf fmt "group-faults(%d dead arrays%s, %a)"
    (List.length t.arrays)
    (match t.arrays with
    | [] -> ""
    | l ->
        Printf.sprintf " [%s]" (String.concat ";" (List.map string_of_int l)))
    Pim.Fault.pp t.fault
