type t = {
  members : Pim.Mesh.t array;
  inter : Pim.Mesh.t;
  inter_cost : int;
  bases : int array; (* length n_members + 1; bases.(n) = total size *)
  owner : int array; (* global rank -> member index *)
}

let create ?(inter_cost = 10) ~inter members =
  let n = Array.length members in
  if n <> Pim.Mesh.size inter then
    invalid_arg
      (Printf.sprintf
         "Array_group: %d members do not fit a %dx%d interconnect" n
         (Pim.Mesh.rows inter) (Pim.Mesh.cols inter));
  if inter_cost < 1 then
    invalid_arg "Array_group: inter_cost must be >= 1";
  let bases = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    bases.(i + 1) <- bases.(i) + Pim.Mesh.size members.(i)
  done;
  let owner = Array.make bases.(n) 0 in
  for i = 0 to n - 1 do
    Array.fill owner bases.(i) (Pim.Mesh.size members.(i)) i
  done;
  { members = Array.copy members; inter; inter_cost; bases; owner }

let line ?inter_cost members =
  if members = [] then invalid_arg "Array_group: no members";
  let members = Array.of_list members in
  create ?inter_cost
    ~inter:(Pim.Mesh.create ~rows:1 ~cols:(Array.length members))
    members

let n_members t = Array.length t.members
let member t i = t.members.(i)
let members t = Array.copy t.members
let inter t = t.inter
let inter_cost t = t.inter_cost
let size t = t.bases.(Array.length t.members)
let base t i = t.bases.(i)

let member_of_rank t g =
  if g < 0 || g >= size t then
    invalid_arg
      (Printf.sprintf "Array_group: global rank %d out of bounds (size %d)" g
         (size t));
  t.owner.(g)

let local_of_rank t g =
  let m = member_of_rank t g in
  (m, g - t.bases.(m))

let global_rank t ~member:m r =
  if m < 0 || m >= n_members t then
    invalid_arg (Printf.sprintf "Array_group: no member %d" m);
  if r < 0 || r >= Pim.Mesh.size t.members.(m) then
    invalid_arg
      (Printf.sprintf "Array_group: local rank %d out of bounds for member %d"
         r m);
  t.bases.(m) + r

let array_distance t i j = Pim.Mesh.distance t.inter i j

let move_cost t i j =
  if i = j then 0 else t.inter_cost * Pim.Mesh.distance t.inter i j

let distance t a b =
  let ma, la = local_of_rank t a and mb, lb = local_of_rank t b in
  if ma = mb then Pim.Mesh.distance t.members.(ma) la lb
  else move_cost t ma mb

let degenerate t = if n_members t = 1 then Some t.members.(0) else None

let validate_trace t trace =
  let sz = size t in
  List.iteri
    (fun w win ->
      let mp = Reftrace.Window.max_proc win in
      if mp >= sz then
        invalid_arg
          (Printf.sprintf
             "Array_group: window %d references rank %d outside the group \
              (size %d)"
             w mp sz))
    (Reftrace.Trace.windows trace)

let mesh_equal a b =
  Pim.Mesh.rows a = Pim.Mesh.rows b
  && Pim.Mesh.cols a = Pim.Mesh.cols b
  && Pim.Mesh.wraps a = Pim.Mesh.wraps b

let equal a b =
  n_members a = n_members b
  && a.inter_cost = b.inter_cost
  && mesh_equal a.inter b.inter
  && Array.for_all2 mesh_equal a.members b.members

(* --- spec grammar ------------------------------------------------- *)

let parse_dims who s =
  match String.split_on_char 'x' (String.lowercase_ascii (String.trim s)) with
  | [ r; c ] -> (
      match (int_of_string_opt r, int_of_string_opt c) with
      | Some r, Some c when r > 0 && c > 0 -> (r, c)
      | _ -> invalid_arg (Printf.sprintf "%s: bad dimensions %S" who s))
  | _ -> invalid_arg (Printf.sprintf "%s: bad dimensions %S" who s)

let of_spec ?inter_cost ?(torus = false) spec =
  let who = "Array_group.of_spec" in
  let mk (rows, cols) =
    if torus then Pim.Mesh.torus ~rows ~cols else Pim.Mesh.create ~rows ~cols
  in
  let spec = String.trim spec in
  (* first occurrence of the literal "of" splits grid specs like
     "2x2of8x8"; dimension strings never contain letters, so a match is
     unambiguous *)
  let split_on_of s =
    let n = String.length s in
    let rec find i =
      if i + 2 > n then None
      else if s.[i] = 'o' && i + 1 < n && s.[i + 1] = 'f' then
        Some (String.sub s 0 i, String.sub s (i + 2) (n - i - 2))
      else find (i + 1)
    in
    find 0
  in
  match split_on_of spec with
  | Some (lhs, rhs) ->
      let irows, icols = parse_dims who lhs in
      let dims = parse_dims who rhs in
      create ?inter_cost
        ~inter:(Pim.Mesh.create ~rows:irows ~cols:icols)
        (Array.init (irows * icols) (fun _ -> mk dims))
  | None ->
      let members =
        List.map (fun s -> mk (parse_dims who s))
          (String.split_on_char ',' spec)
      in
      line ?inter_cost members

(* --- virtual embedding -------------------------------------------- *)

(* Tile the members onto the interconnect grid: grid column [ic] is as
   wide as its widest member, grid row [ir] as tall as its tallest, so a
   homogeneous grid embeds exactly and a heterogeneous line gets one tile
   per member. Coordinates past a smaller member's edge clamp to its last
   row/column when mapped back. *)
let tiling t =
  let irows = Pim.Mesh.rows t.inter and icols = Pim.Mesh.cols t.inter in
  let col_w = Array.make icols 0 and row_h = Array.make irows 0 in
  Array.iteri
    (fun m mesh ->
      let iy = m / icols and ix = m mod icols in
      col_w.(ix) <- max col_w.(ix) (Pim.Mesh.cols mesh);
      row_h.(iy) <- max row_h.(iy) (Pim.Mesh.rows mesh))
    t.members;
  let col_off = Array.make (icols + 1) 0 and row_off = Array.make (irows + 1) 0 in
  for ix = 0 to icols - 1 do
    col_off.(ix + 1) <- col_off.(ix) + col_w.(ix)
  done;
  for iy = 0 to irows - 1 do
    row_off.(iy + 1) <- row_off.(iy) + row_h.(iy)
  done;
  (col_off, row_off)

let virtual_mesh t =
  match degenerate t with
  | Some m -> m
  | None ->
      let col_off, row_off = tiling t in
      Pim.Mesh.create
        ~rows:row_off.(Array.length row_off - 1)
        ~cols:col_off.(Array.length col_off - 1)

let of_virtual_rank t r =
  match degenerate t with
  | Some _ -> r
  | None ->
      let col_off, row_off = tiling t in
      let icols = Pim.Mesh.cols t.inter in
      let vcols = col_off.(Array.length col_off - 1) in
      let vy = r / vcols and vx = r mod vcols in
      let find off v =
        let i = ref 0 in
        while off.(!i + 1) <= v do
          incr i
        done;
        !i
      in
      let iy = find row_off vy and ix = find col_off vx in
      let m = (iy * icols) + ix in
      let mesh = t.members.(m) in
      let ly = min (vy - row_off.(iy)) (Pim.Mesh.rows mesh - 1) in
      let lx = min (vx - col_off.(ix)) (Pim.Mesh.cols mesh - 1) in
      t.bases.(m) + (ly * Pim.Mesh.cols mesh) + lx

let remap_virtual_trace t trace =
  match degenerate t with
  | Some _ -> trace
  | None ->
      let space = Reftrace.Trace.space trace in
      let n_data = Reftrace.Data_space.size space in
      let remap win =
        let out = Reftrace.Window.create ~n_data in
        for d = 0 to n_data - 1 do
          List.iter
            (fun (proc, count) ->
              Reftrace.Window.add ~kind:Reftrace.Window.Read out ~data:d
                ~proc:(of_virtual_rank t proc) ~count)
            (Reftrace.Window.read_profile win d);
          List.iter
            (fun (proc, count) ->
              Reftrace.Window.add ~kind:Reftrace.Window.Write out ~data:d
                ~proc:(of_virtual_rank t proc) ~count)
            (Reftrace.Window.write_profile win d)
        done;
        out
      in
      Reftrace.Trace.create space
        (List.map remap (Reftrace.Trace.windows trace))

let pp fmt t =
  let dims m =
    Printf.sprintf "%d%sx%d" (Pim.Mesh.rows m)
      (if Pim.Mesh.wraps m then "t" else "")
      (Pim.Mesh.cols m)
  in
  Format.fprintf fmt "group[%s; inter %dx%d cost %d]"
    (String.concat ", " (Array.to_list (Array.map dims t.members)))
    (Pim.Mesh.rows t.inter) (Pim.Mesh.cols t.inter) t.inter_cost
