let mesh_kind m = if Pim.Mesh.wraps m then "torus" else "mesh"

let to_string plan =
  let buf = Buffer.create 1024 in
  let group = Group_schedule.group plan in
  Buffer.add_string buf "# pim-sched group-plan v1\n";
  let inter = Array_group.inter group in
  Printf.bprintf buf "inter %s %d %d cost %d\n" (mesh_kind inter)
    (Pim.Mesh.rows inter) (Pim.Mesh.cols inter)
    (Array_group.inter_cost group);
  for m = 0 to Array_group.n_members group - 1 do
    let mesh = Array_group.member group m in
    Printf.bprintf buf "member %d %s %d %d\n" m (mesh_kind mesh)
      (Pim.Mesh.rows mesh) (Pim.Mesh.cols mesh)
  done;
  let n_windows = Group_schedule.n_windows plan in
  let n_data = Group_schedule.n_data plan in
  Printf.bprintf buf "shape %d %d\n" n_windows n_data;
  for w = 0 to n_windows - 1 do
    Printf.bprintf buf "w %d" w;
    for d = 0 to n_data - 1 do
      Printf.bprintf buf " %d" (Group_schedule.center plan ~window:w ~data:d)
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let fail line msg = failwith (Printf.sprintf "group-plan line %d: %s" line msg)

let mesh_of line kind rows cols =
  match kind with
  | "mesh" -> Pim.Mesh.create ~rows ~cols
  | "torus" -> Pim.Mesh.torus ~rows ~cols
  | k -> fail line (Printf.sprintf "unknown topology %S" k)

let of_string s =
  let lines = String.split_on_char '\n' s in
  let inter = ref None in
  let members = ref [] (* (index, mesh), reversed *) in
  let shape = ref None in
  let rows = ref [] (* (line, window, ranks), reversed *) in
  List.iteri
    (fun i line ->
      let lno = i + 1 in
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then
        match
          String.split_on_char ' ' line |> List.filter (fun t -> t <> "")
        with
        | [ "inter"; kind; r; c; "cost"; k ] -> (
            match
              (int_of_string_opt r, int_of_string_opt c, int_of_string_opt k)
            with
            | Some r, Some c, Some k ->
                inter := Some (mesh_of lno kind r c, k)
            | _ -> fail lno "bad inter line")
        | "inter" :: _ -> fail lno "bad inter line"
        | [ "member"; idx; kind; r; c ] -> (
            match
              (int_of_string_opt idx, int_of_string_opt r, int_of_string_opt c)
            with
            | Some idx, Some r, Some c ->
                members := (idx, mesh_of lno kind r c) :: !members
            | _ -> fail lno "bad member line")
        | "member" :: _ -> fail lno "bad member line"
        | [ "shape"; w; d ] -> (
            match (int_of_string_opt w, int_of_string_opt d) with
            | Some w, Some d when w > 0 && d > 0 -> shape := Some (w, d)
            | _ -> fail lno "bad shape line")
        | "w" :: widx :: ranks -> (
            match int_of_string_opt widx with
            | Some w ->
                let ranks =
                  List.map
                    (fun r ->
                      match int_of_string_opt r with
                      | Some r -> r
                      | None -> fail lno (Printf.sprintf "bad rank %S" r))
                    ranks
                in
                rows := (lno, w, ranks) :: !rows
            | None -> fail lno "bad window index")
        | _ -> fail lno (Printf.sprintf "unrecognized line %S" line))
    lines;
  let inter, inter_cost =
    match !inter with Some v -> v | None -> fail 0 "missing inter line"
  in
  let members = List.sort compare (List.rev !members) in
  List.iteri
    (fun i (idx, _) ->
      if idx <> i then fail 0 (Printf.sprintf "missing member %d" i))
    members;
  let group =
    Array_group.create ~inter_cost ~inter
      (Array.of_list (List.map snd members))
  in
  let n_windows, n_data =
    match !shape with Some v -> v | None -> fail 0 "missing shape line"
  in
  let plan = Group_schedule.create group ~n_windows ~n_data in
  let seen = Array.make n_windows false in
  List.iter
    (fun (lno, w, ranks) ->
      if w < 0 || w >= n_windows then
        fail lno (Printf.sprintf "window %d out of range" w);
      if seen.(w) then fail lno (Printf.sprintf "duplicate window %d" w);
      seen.(w) <- true;
      if List.length ranks <> n_data then
        fail lno
          (Printf.sprintf "window %d has %d ranks, expected %d" w
             (List.length ranks) n_data);
      List.iteri
        (fun d r ->
          if r < 0 || r >= Array_group.size group then
            fail lno (Printf.sprintf "rank %d outside the group" r)
          else Group_schedule.set_center plan ~window:w ~data:d r)
        ranks)
    (List.rev !rows);
  Array.iteri
    (fun w s -> if not s then fail 0 (Printf.sprintf "missing window %d" w))
    seen;
  plan

let save plan path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string plan))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (In_channel.input_all ic))
