(** The multi-array scheduling problem: a group, a global trace, and one
    {!Sched.Problem} session per member.

    A [Group_problem.t] is the group-tier analogue of {!Sched.Problem}:
    it splits the global trace into per-member {e projections} (member
    [m]'s projection keeps every window — indices stay aligned — but
    only the references issued from [m]'s processors, localized to
    member ranks) and opens an ordinary per-member problem session over
    each, so the whole separable-kernel machinery (marginal caches, flat
    cost arenas, axis tables) is reused per array, unchanged.

    On top it caches the {e member weight} tables the cross-array layer
    consumes: [W(w, d, m)] — the total reference count datum [d]
    receives from member [m]'s processors in window [w]. Under the flat
    group metric, hosting [d] in member [i] during window [w] adds
    exactly [Σ_{j ≠ i} W(w, d, j) · move_cost(j, i)] on top of the
    member-local cost — a {e constant per member}, which is why array
    assignment is a small exact problem over these sums (DESIGN.md §12).

    A 1-member group skips projection entirely: the single sub-problem
    is opened over the {e original} trace value, so the degenerate path
    is byte-identical to the plain single-mesh path. *)

type t

(** [create ?policy ?jobs ?kernel ?fault group trace] builds the
    problem. Defaults mirror {!Sched.Problem.create}: [Unbounded],
    [jobs = 1], [`Separable], {!Group_fault.none}. The trace references
    {e global} ranks.
    @raise Invalid_argument if the trace references ranks outside the
    group, the fault does not fit, or a bounded policy cannot hold the
    data (see {!check_feasible}). *)
val create :
  ?policy:Sched.Problem.capacity_policy ->
  ?jobs:int ->
  ?kernel:Sched.Problem.kernel ->
  ?fault:Group_fault.t ->
  Array_group.t ->
  Reftrace.Trace.t ->
  t

val group : t -> Array_group.t
val trace : t -> Reftrace.Trace.t
val policy : t -> Sched.Problem.capacity_policy
val jobs : t -> int
val kernel : t -> Sched.Problem.kernel
val fault : t -> Group_fault.t
val n_data : t -> int
val n_windows : t -> int
val n_members : t -> int

(** [with_fault t fault] is a fresh problem over the same group and
    trace with the fault replaced — member sessions are reopened over
    their shared contexts ({!Sched.Problem.with_fault}), so trace
    projections and axis tables carry over untouched. How the
    reschedule-on-failure path degrades a group problem mid-run. *)
val with_fault : t -> Group_fault.t -> t

(** [sub t m] is member [m]'s problem session (over the projection). *)
val sub : t -> int -> Sched.Problem.t

(** [member_weight t ~window ~data ~member] is [W(w, d, m)] above. *)
val member_weight : t -> window:int -> data:int -> member:int -> int

(** [cross_cost t ~window ~data ~member] is the cross-array reference
    cost of hosting the datum in [member] during [window]:
    [Σ_{j ≠ member} W(window, data, j) · move_cost(j, member)]. *)
val cross_cost : t -> window:int -> data:int -> member:int -> int

(** [merged_cross_cost t ~data ~member] is {!cross_cost} against the
    whole-execution merged window. *)
val merged_cross_cost : t -> data:int -> member:int -> int

(** [rank_alive t g] / [alive_members t] — the fault masks, see
    {!Group_fault}. *)
val rank_alive : t -> int -> bool

val alive_members : t -> int list

(** [degenerate t] is the single member's session when the group has one
    member and no array is dead — the case solvers delegate wholesale to
    the single-array path. *)
val degenerate : t -> Sched.Problem.t option

(** [has_member_link_faults t] is [true] iff some member carries a link
    fault — the condition that forces solvers off the axis-table
    migration DP (BFS-detour distances are not separable). *)
val has_member_link_faults : t -> bool

(** [assignment t] is the two-level scheduler's first stage: one member
    index per datum, computed once and cached. Data are visited
    heaviest-first (total merged references descending, id ascending —
    the canonical assignment order); each takes the alive member
    minimizing [merged_cross_cost + (member-local cost at the member's
    best merged center)], lowest index on ties, skipping members whose
    aggregate capacity ([capacity × alive ranks] under [Bounded]) is
    exhausted. Exact for static placements under the flat metric
    (DESIGN.md §12); counter [multi.assignments].
    @raise Invalid_argument when a bounded policy runs out of room. *)
val assignment : t -> int array

(** [max_arena_bytes t] is Σ member sessions' worst-case arena footprint
    — the serve path's admission-control currency. *)
val max_arena_bytes : t -> int

(** [check_feasible t ~who] raises the historical [Invalid_argument]
    when a bounded policy cannot hold the data space in the group's
    surviving aggregate capacity. *)
val check_feasible : t -> who:string -> unit
