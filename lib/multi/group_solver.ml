let alive_mask gp =
  let group = Group_problem.group gp in
  Array.init (Array_group.size group) (fun g -> Group_problem.rank_alive gp g)

(* Per-datum migration DP over the whole group: member blocks read their
   arena slabs in place, the fabric is one scalar edge per member pair,
   and the cross-array reference cost of window w enters as the
   per-member constant Σ_{j≠i} W(w,d,j)·move_cost(j,i). Returns the raw
   (volume-unweighted) per-datum optima — scaling by a datum's volume
   multiplies every term alike, so the witness trajectory is unchanged. *)
let dp_all gp =
  let group = Group_problem.group gp in
  let nm = Group_problem.n_members gp in
  let nd = Group_problem.n_data gp in
  let nw = Group_problem.n_windows gp in
  let axes =
    Array.init nm (fun m -> Sched.Problem.axis_tables (Group_problem.sub gp m))
  in
  let alive = alive_mask gp in
  let move_cost i j = Array_group.move_cost group i j in
  Sched.Engine.map ~jobs:(Group_problem.jobs gp) nd (fun d ->
      let members =
        Array.init nm (fun m ->
            let slab, offs =
              Sched.Problem.layer_slab (Group_problem.sub gp m) ~data:d
            in
            let xdist, ydist = axes.(m) in
            {
              Pathgraph.Layered.g_xdist = xdist;
              g_ydist = ydist;
              g_vectors = slab;
              g_offsets = offs;
            })
      in
      match
        Pathgraph.Layered.solve_group ~members ~move_cost
          ~consts:(fun ~layer ~member ->
            Group_problem.cross_cost gp ~window:layer ~data:d ~member)
          ~n_layers:nw
          ~allowed:(fun ~layer:_ g -> alive.(g))
          ()
      with
      | Some r -> r
      | None -> assert false (* >= 1 alive rank in an alive member *))

let migration_dp gp =
  let results = dp_all gp in
  let plan =
    Group_schedule.create (Group_problem.group gp)
      ~n_windows:(Group_problem.n_windows gp)
      ~n_data:(Group_problem.n_data gp)
  in
  Array.iteri
    (fun d (_cost, centers) ->
      Array.iteri
        (fun w g -> Group_schedule.set_center plan ~window:w ~data:d g)
        centers)
    results;
  if !Obs.enabled then begin
    Obs.Metrics.add "multi.migration_solves" (Array.length results);
    Obs.Metrics.add "multi.array_migrations" (Group_schedule.array_moves plan)
  end;
  plan

let lower_bound gp =
  if Group_problem.has_member_link_faults gp then None
  else begin
    let space = Reftrace.Trace.space (Group_problem.trace gp) in
    let results = dp_all gp in
    let total = ref 0 in
    Array.iteri
      (fun d (cost, _) ->
        total := !total + (Reftrace.Data_space.volume_of space d * cost))
      results;
    Some !total
  end

(* Stage two of the static path: run [algo] inside one member on the
   subset trace of its assigned data, then lift local centers to global
   ranks. The subset data space keeps each datum's volume (one 1x1
   array per datum, named by its global description — unique). *)
let solve_member gp algo plan m ids =
  let sub = Group_problem.sub gp m in
  let member_trace = Sched.Problem.trace sub in
  let space = Reftrace.Trace.space member_trace in
  let k = Array.length ids in
  let descs =
    Array.map
      (fun d ->
        Reftrace.Data_space.array_desc
          ~volume:(Reftrace.Data_space.volume_of space d)
          (Reftrace.Data_space.describe space d)
          ~rows:1 ~cols:1)
      ids
  in
  let sub_space =
    Reftrace.Data_space.create descs.(0) (List.tl (Array.to_list descs))
  in
  let windows =
    List.map
      (fun win ->
        let out = Reftrace.Window.create ~n_data:k in
        Array.iteri
          (fun idx d ->
            List.iter
              (fun (proc, count) ->
                Reftrace.Window.add ~kind:Reftrace.Window.Read out ~data:idx
                  ~proc ~count)
              (Reftrace.Window.read_profile win d);
            List.iter
              (fun (proc, count) ->
                Reftrace.Window.add ~kind:Reftrace.Window.Write out ~data:idx
                  ~proc ~count)
              (Reftrace.Window.write_profile win d))
          ids;
        out)
      (Reftrace.Trace.windows member_trace)
  in
  let subset_trace = Reftrace.Trace.create sub_space windows in
  let problem =
    Sched.Problem.create
      ~policy:(Group_problem.policy gp)
      ~jobs:(Group_problem.jobs gp)
      ~kernel:(Group_problem.kernel gp)
      ~fault:(Sched.Problem.fault sub)
      (Array_group.member (Group_problem.group gp) m)
      subset_trace
  in
  let sched = Sched.Scheduler.solve problem algo in
  let base = Array_group.base (Group_problem.group gp) m in
  for w = 0 to Group_problem.n_windows gp - 1 do
    Array.iteri
      (fun idx d ->
        Group_schedule.set_center plan ~window:w ~data:d
          (base + Sched.Schedule.center sched ~window:w ~data:idx))
      ids
  done

let static_two_level gp algo =
  let asn = Group_problem.assignment gp in
  let nm = Group_problem.n_members gp in
  let plan =
    Group_schedule.create (Group_problem.group gp)
      ~n_windows:(Group_problem.n_windows gp)
      ~n_data:(Group_problem.n_data gp)
  in
  for m = 0 to nm - 1 do
    let ids =
      Array.of_list
        (List.filter
           (fun d -> asn.(d) = m)
           (List.init (Array.length asn) Fun.id))
    in
    if Array.length ids > 0 then solve_member gp algo plan m ids
  done;
  if !Obs.enabled then begin
    Obs.Metrics.incr "multi.static_solves";
    Obs.Metrics.add "multi.array_migrations" (Group_schedule.array_moves plan)
  end;
  plan

let solve gp algo =
  Obs.Span.with_ ~name:"multi.solve" @@ fun () ->
  match Group_problem.degenerate gp with
  | Some sub ->
      if !Obs.enabled then Obs.Metrics.incr "multi.degenerate_delegations";
      Group_schedule.of_mesh_schedule (Group_problem.group gp)
        (Sched.Scheduler.solve sub algo)
  | None -> (
      match (algo, Group_problem.policy gp) with
      | Sched.Scheduler.Gomcds, Sched.Problem.Unbounded
        when not (Group_problem.has_member_link_faults gp) ->
          migration_dp gp
      | _ -> static_two_level gp algo)

let evaluate gp algo =
  let plan = solve gp algo in
  (plan, Group_schedule.cost plan (Group_problem.trace gp))
