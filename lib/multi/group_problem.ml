type t = {
  group : Array_group.t;
  trace : Reftrace.Trace.t;
  policy : Sched.Problem.capacity_policy;
  jobs : int;
  kernel : Sched.Problem.kernel;
  fault : Group_fault.t;
  subs : Sched.Problem.t array;
  (* weights.(w).(d).(m) = combined reference count of datum d from
     member m's processors in window w; None for a 1-member group (the
     cross layer is identically zero there) *)
  weights : int array array array option;
  merged_weights : int array array option; (* .(d).(m) *)
  mutable assignment : int array option;
}

let group t = t.group
let trace t = t.trace
let policy t = t.policy
let jobs t = t.jobs
let kernel t = t.kernel
let fault t = t.fault
let n_data t = Reftrace.Data_space.size (Reftrace.Trace.space t.trace)
let n_windows t = Reftrace.Trace.n_windows t.trace
let n_members t = Array_group.n_members t.group
let sub t m = t.subs.(m)

(* One pass per window: split the global window into per-member local
   windows (kinds preserved) and accumulate the per-member weight rows. *)
let project group trace =
  let n_members = Array_group.n_members group in
  let space = Reftrace.Trace.space trace in
  let nd = Reftrace.Data_space.size space in
  let windows = Reftrace.Trace.windows trace in
  let weights =
    List.map (fun _ -> Array.make_matrix nd n_members 0) windows
  in
  let projections =
    List.map2
      (fun win wrow ->
        let locals =
          Array.init n_members (fun _ -> Reftrace.Window.create ~n_data:nd)
        in
        for d = 0 to nd - 1 do
          List.iter
            (fun (kind, profile) ->
              List.iter
                (fun (proc, count) ->
                  let m, local = Array_group.local_of_rank group proc in
                  Reftrace.Window.add ~kind locals.(m) ~data:d ~proc:local
                    ~count;
                  wrow.(d).(m) <- wrow.(d).(m) + count)
                profile)
            [
              (Reftrace.Window.Read, Reftrace.Window.read_profile win d);
              (Reftrace.Window.Write, Reftrace.Window.write_profile win d);
            ]
        done;
        locals)
      windows weights
  in
  let member_traces =
    Array.init n_members (fun m ->
        Reftrace.Trace.create space
          (List.map (fun locals -> locals.(m)) projections))
  in
  (member_traces, Array.of_list (List.map Fun.id weights))

let make_subs ~policy ~jobs ~kernel ~fault group member_traces =
  Array.init (Array_group.n_members group) (fun m ->
      let mesh = Array_group.member group m in
      let mf = Group_fault.member_fault fault group m in
      (* a member whose every rank is node-dead is handled like a dead
         array — excluded by the group-tier masks — so its session is
         opened healthy rather than tripping Problem.create's
         all-dead check *)
      let mf =
        if Pim.Fault.alive_count mf mesh = 0 then Pim.Fault.none else mf
      in
      Sched.Problem.create ~policy ~jobs ~kernel ~fault:mf mesh
        member_traces.(m))

let create ?(policy = Sched.Problem.Unbounded) ?(jobs = 1)
    ?(kernel = `Separable) ?(fault = Group_fault.none) group trace =
  Array_group.validate_trace group trace;
  Group_fault.validate fault group;
  if !Obs.enabled then Obs.Metrics.incr "multi.problems";
  if Array_group.n_members group = 1 then
    {
      group;
      trace;
      policy;
      jobs;
      kernel;
      fault;
      subs = make_subs ~policy ~jobs ~kernel ~fault group [| trace |];
      weights = None;
      merged_weights = None;
      assignment = None;
    }
  else begin
    let member_traces, weights = project group trace in
    let nd = Reftrace.Data_space.size (Reftrace.Trace.space trace) in
    let nm = Array_group.n_members group in
    let merged = Array.make_matrix nd nm 0 in
    Array.iter
      (fun wrow ->
        for d = 0 to nd - 1 do
          for m = 0 to nm - 1 do
            merged.(d).(m) <- merged.(d).(m) + wrow.(d).(m)
          done
        done)
      weights;
    {
      group;
      trace;
      policy;
      jobs;
      kernel;
      fault;
      subs = make_subs ~policy ~jobs ~kernel ~fault group member_traces;
      weights = Some weights;
      merged_weights = Some merged;
      assignment = None;
    }
  end

let with_fault t fault =
  Group_fault.validate fault t.group;
  let subs =
    Array.init (n_members t) (fun m ->
        let mesh = Array_group.member t.group m in
        let mf = Group_fault.member_fault fault t.group m in
        let mf =
          if Pim.Fault.alive_count mf mesh = 0 then Pim.Fault.none else mf
        in
        (* patch, not rebuild: member sessions keep every slab row the
           member's fault change did not reprice (a fully-dead member
           substitutes Fault.none, a non-monotone change — the patch's
           carry rules gate on monotonicity, so that stays correct) *)
        Sched.Problem.with_fault_patch t.subs.(m) mf)
  in
  { t with fault; subs; assignment = None }

let member_weight t ~window ~data ~member =
  match t.weights with
  | None -> Reftrace.Window.references (Reftrace.Trace.window t.trace window) data
  | Some w -> w.(window).(data).(member)

let cross_of_row t row member =
  let acc = ref 0 in
  for j = 0 to n_members t - 1 do
    if j <> member && row.(j) > 0 then
      acc := !acc + (row.(j) * Array_group.move_cost t.group j member)
  done;
  !acc

let cross_cost t ~window ~data ~member =
  match t.weights with
  | None -> 0
  | Some w -> cross_of_row t w.(window).(data) member

let merged_cross_cost t ~data ~member =
  match t.merged_weights with
  | None -> 0
  | Some m -> cross_of_row t m.(data) member

let rank_alive t g = Group_fault.rank_alive t.fault t.group g
let alive_members t = Group_fault.alive_members t.fault t.group

let degenerate t =
  if n_members t = 1 && Group_fault.dead_arrays t.fault = [] then
    Some t.subs.(0)
  else None

let has_member_link_faults t =
  Pim.Fault.has_link_faults (Group_fault.node_fault t.fault)

let max_arena_bytes t =
  Array.fold_left (fun acc s -> acc + Sched.Problem.max_arena_bytes s) 0 t.subs

let member_alive_ranks t m =
  let b = Array_group.base t.group m in
  let sz = Pim.Mesh.size (Array_group.member t.group m) in
  let n = ref 0 in
  for g = b to b + sz - 1 do
    if rank_alive t g then incr n
  done;
  !n

let aggregate_capacity t =
  match t.policy with
  | Sched.Problem.Unbounded -> max_int
  | Sched.Problem.Bounded c ->
      List.fold_left (fun acc m -> acc + (c * member_alive_ranks t m)) 0
        (alive_members t)

let check_feasible t ~who =
  match t.policy with
  | Sched.Problem.Unbounded -> ()
  | Sched.Problem.Bounded c ->
      let room = aggregate_capacity t in
      if n_data t > room then
        invalid_arg
          (Printf.sprintf
             "%s: %d data cannot fit the group's surviving capacity %d \
              (capacity %d per processor)"
             who (n_data t) room c)

(* Stage one of the two-level scheduler: heaviest-first greedy over the
   per-member score [merged cross cost + member-local cost at the
   member's best merged center] — exact for static placements under the
   flat metric (DESIGN.md §12). *)
let assignment t =
  match t.assignment with
  | Some a -> a
  | None ->
      check_feasible t ~who:"Group_problem.assignment";
      let nd = n_data t in
      let merged = Reftrace.Trace.merged t.trace in
      let order =
        List.sort
          (fun a b ->
            let ra = Reftrace.Window.references merged a
            and rb = Reftrace.Window.references merged b in
            if ra <> rb then compare rb ra else compare a b)
          (List.init nd Fun.id)
      in
      let alive = alive_members t in
      let room =
        Array.init (n_members t) (fun m ->
            match t.policy with
            | Sched.Problem.Unbounded -> max_int
            | Sched.Problem.Bounded c -> c * member_alive_ranks t m)
      in
      let asn = Array.make nd (-1) in
      List.iter
        (fun d ->
          let best = ref (-1) and best_score = ref max_int in
          List.iter
            (fun m ->
              if room.(m) > 0 then begin
                let s = sub t m in
                let center = Sched.Problem.merged_optimal_center s ~data:d in
                let local =
                  (Sched.Problem.merged_vector s ~data:d).(center)
                in
                let score = merged_cross_cost t ~data:d ~member:m + local in
                if score < !best_score then begin
                  best_score := score;
                  best := m
                end
              end)
            alive;
          if !best < 0 then
            invalid_arg
              "Group_problem.assignment: no member has room left (capacity \
               exhausted)";
          asn.(d) <- !best;
          if room.(!best) <> max_int then room.(!best) <- room.(!best) - 1)
        order;
      if !Obs.enabled then begin
        Obs.Metrics.incr "multi.assignments";
        Obs.Metrics.add "multi.assigned_data" nd
      end;
      t.assignment <- Some asn;
      asn
