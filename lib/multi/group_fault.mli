(** Fault model for a group of PIM arrays.

    Extends {!Pim.Fault} one tier up with {e whole-array} failures: a
    dead array is a dead rank set ([lib/pim/fault.ml] already
    generalizes), so member-level machinery needs nothing new — but the
    group keeps the array-level intent explicit so injection, reporting
    and resurrection rules work at the right granularity.

    Failure semantics, mirroring the single-array model:
    - a {e dead array}'s processors can no longer host data, but their
      routers — and the member's fabric port — stay alive: references
      issued from a dead array still count and still price against the
      group metric, and distances are unchanged;
    - {e node} and {e link} faults are ordinary {!Pim.Fault} failures at
      {e global} ranks, each confined to one member (the fabric has no
      individually-failable links — to lose it, kill the array). *)

type t

(** The healthy group. *)
val none : t

val is_none : t -> bool

(** [create ?dead_arrays ?dead_nodes ?dead_links ()] builds a static
    fault set: [dead_arrays] are member indices, [dead_nodes] global
    ranks, [dead_links] global-rank pairs that must both sit in one
    member and be a link of its mesh (checked by {!validate}). *)
val create :
  ?dead_arrays:int list ->
  ?dead_nodes:int list ->
  ?dead_links:(int * int) list ->
  unit ->
  t

(** [inject ~seed ~array_rate ~node_rate ~link_rate group] is the seeded
    deterministic injection, drawing in a fixed order (arrays, then
    global ranks ascending, then member links in member-ascending
    canonical order) so dead sets are monotone in every rate, exactly
    like {!Pim.Fault.inject}. Resurrection keeps the group solvable: if
    every array would die the luckiest array survives, and within each
    surviving array the luckiest rank is revived if node faults would
    kill the whole member.
    @raise Invalid_argument unless all rates are in [0, 1]. *)
val inject :
  seed:int ->
  array_rate:float ->
  node_rate:float ->
  link_rate:float ->
  Array_group.t ->
  t

val dead_arrays : t -> int list
val array_dead : t -> int -> bool
val n_dead_arrays : t -> int

(** [node_fault t] is the group-global node/link failure set (dead
    arrays {e not} folded in — see {!member_fault}). *)
val node_fault : t -> Pim.Fault.t

(** [kill_array t i] / [union a b] — persistent extension, as in
    {!Pim.Fault}. *)
val kill_array : t -> int -> t

val union : t -> t -> t

(** [member_fault t group m] lowers the group fault onto member [m]'s
    local ranks: its share of the global node and link faults, as a
    {!Pim.Fault.t} the member's {!Sched.Problem} session is opened over.
    For a {e dead} array this is {!Pim.Fault.none} — dead arrays are
    excluded at the group tier (assignment and DP masks), not by killing
    every member rank, so the member problem stays constructible. *)
val member_fault : t -> Array_group.t -> int -> Pim.Fault.t

(** [rank_alive t group g] is [false] iff global rank [g] cannot host
    data (its array is dead, or its node is). *)
val rank_alive : t -> Array_group.t -> int -> bool

(** [alive_members t group] lists member indices that are not dead and
    still have at least one alive rank, ascending. *)
val alive_members : t -> Array_group.t -> int list

(** [validate t group] checks arrays/ranks are in range, every dead link
    joins two ranks of one member that are mesh-adjacent there, and at
    least one member survives with an alive rank.
    @raise Invalid_argument otherwise. *)
val validate : t -> Array_group.t -> unit

val pp : Format.formatter -> t -> unit
