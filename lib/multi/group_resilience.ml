type event = { window : int; fault : Group_fault.t }

type report = {
  algorithm : Sched.Scheduler.algorithm;
  reschedule : bool;
  planned_cost : int;
  paid_cost : int;
  evicted : int;
  evicted_cost : int;
  reschedules : int;
}

let run ?(reschedule = true) ?(events = []) gp algorithm =
  Obs.Span.with_ ~name:"multi.resilience" @@ fun () ->
  let group = Group_problem.group gp in
  let trace = Group_problem.trace gp in
  let space = Reftrace.Trace.space trace in
  let nw = Group_problem.n_windows gp in
  let nd = Group_problem.n_data gp in
  let vol d = Reftrace.Data_space.volume_of space d in
  let gdist = Array_group.distance group in
  (* union the events per window, validated up front *)
  let at = Array.make nw None in
  List.iter
    (fun ev ->
      if ev.window < 0 || ev.window >= nw then
        invalid_arg
          (Printf.sprintf "Group_resilience: event window %d out of range"
             ev.window);
      at.(ev.window) <-
        Some
          (match at.(ev.window) with
          | None -> ev.fault
          | Some f -> Group_fault.union f ev.fault))
    events;
  let plan = Group_solver.solve gp algorithm in
  let planned_cost = Group_schedule.total_cost plan trace in
  let active =
    Array.init nw (fun w ->
        Array.init nd (fun d -> Group_schedule.center plan ~window:w ~data:d))
  in
  (* current problem under the accumulated fault: repair pricing reads
     its member cost rows, so evolving link faults stay priced right *)
  let cur_gp = ref gp in
  let prev = Array.copy active.(0) in
  let paid = ref 0 in
  let evicted = ref 0 and evicted_cost = ref 0 and reschedules = ref 0 in
  let alive g = Group_problem.rank_alive !cur_gp g in
  (* cheapest surviving global center for (d, w): member cross constant
     + the member's cost row, lowest global rank on ties *)
  let repair_center d w =
    let best = ref (-1) and best_cost = ref max_int in
    List.iter
      (fun m ->
        let sub = Group_problem.sub !cur_gp m in
        let cross = Group_problem.cross_cost !cur_gp ~window:w ~data:d ~member:m in
        let b = Array_group.base group m in
        let msz = Pim.Mesh.size (Array_group.member group m) in
        for r = 0 to msz - 1 do
          if alive (b + r) then begin
            let c = cross + Sched.Problem.cost_entry sub ~window:w ~data:d r in
            if c < !best_cost then begin
              best_cost := c;
              best := b + r
            end
          end
        done)
      (Group_problem.alive_members !cur_gp);
    assert (!best >= 0);
    !best
  in
  (* price a continuation for one datum from its current position: entry
     move + suffix references + suffix movement, the exact charges the
     execution loop below applies *)
  let price_continuation d ~from_window centers =
    let v = vol d in
    let total = ref 0 in
    if centers.(0) <> prev.(d) then
      total := !total + (v * gdist prev.(d) centers.(0));
    for i = 0 to Array.length centers - 1 do
      let w = from_window + i in
      let win = Reftrace.Trace.window trace w in
      Reftrace.Window.iter_profile win d (fun ~proc ~count ->
          total := !total + (v * count * gdist proc centers.(i)));
      if i > 0 && centers.(i) <> centers.(i - 1) then
        total := !total + (v * gdist centers.(i - 1) centers.(i))
    done;
    !total
  in
  for w = 0 to nw - 1 do
    (match at.(w) with
    | None -> ()
    | Some ev_fault ->
        if !Obs.enabled then Obs.Metrics.incr "multi.resilience_events";
        let merged = Group_fault.union (Group_problem.fault !cur_gp) ev_fault in
        cur_gp := Group_problem.with_fault !cur_gp merged;
        (* repair: remap every dead center of the remaining plan *)
        let repaired =
          Array.init (nw - w) (fun i ->
              Array.init nd (fun d ->
                  let c = active.(w + i).(d) in
                  if alive c then c else repair_center d (w + i)))
        in
        let chosen =
          if not reschedule then repaired
          else begin
            let suffix_windows =
              List.filteri
                (fun i _ -> i >= w)
                (Reftrace.Trace.windows trace)
            in
            let suffix_trace = Reftrace.Trace.create space suffix_windows in
            let cont_gp =
              Group_problem.create
                ~policy:(Group_problem.policy gp)
                ~jobs:(Group_problem.jobs gp)
                ~kernel:(Group_problem.kernel gp)
                ~fault:merged group suffix_trace
            in
            let resolved_plan = Group_solver.solve cont_gp algorithm in
            let improved = ref false in
            let pick = Array.make nd false in
            for d = 0 to nd - 1 do
              let rep = Array.init (nw - w) (fun i -> repaired.(i).(d)) in
              let res =
                Array.init (nw - w) (fun i ->
                    Group_schedule.center resolved_plan ~window:i ~data:d)
              in
              if
                price_continuation d ~from_window:w res
                < price_continuation d ~from_window:w rep
              then begin
                pick.(d) <- true;
                improved := true
              end
            done;
            if !improved then incr reschedules;
            Array.init (nw - w) (fun i ->
                Array.init nd (fun d ->
                    if pick.(d) then
                      Group_schedule.center resolved_plan ~window:i ~data:d
                    else repaired.(i).(d)))
          end
        in
        Array.iteri (fun i row -> active.(w + i) <- row) chosen;
        (* eviction accounting: data sitting on a rank the event killed *)
        for d = 0 to nd - 1 do
          if not (alive prev.(d)) then begin
            incr evicted;
            evicted_cost :=
              !evicted_cost + (vol d * gdist prev.(d) active.(w).(d));
            if !Obs.enabled then Obs.Metrics.incr "multi.resilience_evictions"
          end
        done);
    let win = Reftrace.Trace.window trace w in
    for d = 0 to nd - 1 do
      let c = active.(w).(d) in
      if c <> prev.(d) then paid := !paid + (vol d * gdist prev.(d) c);
      Reftrace.Window.iter_profile win d (fun ~proc ~count ->
          paid := !paid + (vol d * count * gdist proc c));
      prev.(d) <- c
    done
  done;
  {
    algorithm;
    reschedule;
    planned_cost;
    paid_cost = !paid;
    evicted = !evicted;
    evicted_cost = !evicted_cost;
    reschedules = !reschedules;
  }
