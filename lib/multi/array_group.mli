(** A group of PIM arrays behind an inter-array interconnect.

    The paper schedules data onto a single PIM grid; the MASIM deployment
    shape (see PAPERS.md) is many in-memory arrays — possibly of different
    sizes and topologies — joined by a fabric whose hops cost 10–100× an
    intra-array hop. An [Array_group.t] is that tier: an ordered list of
    {e member} meshes, an {e interconnect} mesh with one node per member
    giving the array-to-array hop counts, and a per-hop cost multiplier.

    {b Ranks.} Group processors are addressed by a dense {e global rank}:
    member blocks concatenated in member order, row-major within each
    member — the global rank of member [i]'s local rank [r] is
    [base t i + r]. A 1-member group's global ranks therefore coincide
    with the member's own ranks, which is what makes the degenerate case
    byte-identical to the single-mesh path.

    {b Metric.} The group distance is two-level and {e flat} across the
    fabric: within a member it is the member's own (wrap-aware) mesh
    distance; between members it is [inter_cost ·
    inter-mesh distance(i, j)] with {e no} intra-member component on
    either end — boarding the fabric dominates the local walk by
    construction ([inter_cost] ≫ member diameters is the intended
    regime). Flatness is what keeps the cross-array layer of the
    scheduler exact and cheap: the cost of hosting a datum in member [i]
    decomposes into (member-local term) + (a constant per member), so
    array assignment reduces to comparing per-array marginal sums
    (DESIGN.md §12). *)

type t

(** [create ?inter_cost ~inter members] builds a group: [members.(i)]
    hangs off node [i] of the [inter] mesh (so
    [Array.length members = Pim.Mesh.size inter]). [inter_cost] (default
    [10]) is the fabric's per-hop cost multiplier.
    @raise Invalid_argument if the member count does not match the
    interconnect size, or [inter_cost < 1]. *)
val create : ?inter_cost:int -> inter:Pim.Mesh.t -> Pim.Mesh.t array -> t

(** [line ?inter_cost members] joins the members along a 1×n interconnect
    — the natural shape for a heterogeneous list.
    @raise Invalid_argument on the empty list. *)
val line : ?inter_cost:int -> Pim.Mesh.t list -> t

(** [of_spec ?inter_cost ?torus spec] parses the CLI grammar:
    - ["RxCofAxB"] — an [R]×[C] grid interconnect of identical [A]×[B]
      members (e.g. ["2x2of8x8"]);
    - ["AxB,CxD,..."] — a heterogeneous comma list joined by a line
      interconnect (a single ["AxB"] is the 1-member degenerate group).

    [torus] (default [false]) makes every {e member} a torus; the
    interconnect is always a plain mesh.
    @raise Invalid_argument on a malformed spec. *)
val of_spec : ?inter_cost:int -> ?torus:bool -> string -> t

val n_members : t -> int

(** [member t i] is the [i]-th member mesh. *)
val member : t -> int -> Pim.Mesh.t

val members : t -> Pim.Mesh.t array

(** [inter t] is the interconnect mesh (one node per member). *)
val inter : t -> Pim.Mesh.t

val inter_cost : t -> int

(** [size t] is the total processor count, Σ member sizes. *)
val size : t -> int

(** [base t i] is the global rank of member [i]'s local rank 0. *)
val base : t -> int -> int

(** [member_of_rank t g] is the member owning global rank [g]. *)
val member_of_rank : t -> int -> int

(** [local_of_rank t g] is [(member, local rank)]. *)
val local_of_rank : t -> int -> int * int

(** [global_rank t ~member r] is [base t member + r], validated. *)
val global_rank : t -> member:int -> int -> int

(** [array_distance t i j] is the interconnect hop count between members
    [i] and [j]. *)
val array_distance : t -> int -> int -> int

(** [move_cost t i j] is the flat member-to-member transfer price:
    [0] when [i = j], else [inter_cost t · array_distance t i j]. *)
val move_cost : t -> int -> int -> int

(** [distance t a b] is the group metric between global ranks: the member
    mesh distance when [a] and [b] share a member, [move_cost] between
    their members otherwise. *)
val distance : t -> int -> int -> int

(** [degenerate t] is [Some mesh] iff the group has exactly one member —
    the case every solver delegates to the plain single-array path. *)
val degenerate : t -> Pim.Mesh.t option

(** [validate_trace t trace] checks every referenced processor is a
    global rank of the group. @raise Invalid_argument otherwise. *)
val validate_trace : t -> Reftrace.Trace.t -> unit

(** [equal a b] holds when member shapes/topologies, interconnect and
    cost multiplier all agree. *)
val equal : t -> t -> bool

(** {2 Virtual embedding}

    Workload generators ({!Workloads}) speak single-mesh geometry. The
    group's {e virtual mesh} is a plain mesh tiling the members onto the
    interconnect grid (tile column widths / row heights are the per-grid-
    column / per-grid-row maxima; a 1-member group's virtual mesh is the
    member itself): generate the workload there, then
    {!remap_virtual_trace} carries every reference onto group ranks
    (coordinates beyond a smaller member's edge clamp to its last
    row/column). This is how [pimsched --arrays] builds group traces. *)

(** [virtual_mesh t] is the tiling mesh described above. *)
val virtual_mesh : t -> Pim.Mesh.t

(** [of_virtual_rank t r] maps a {!virtual_mesh} rank to a global group
    rank. *)
val of_virtual_rank : t -> int -> int

(** [remap_virtual_trace t trace] rewrites every reference's processor
    through {!of_virtual_rank} (window structure, data ids, read/write
    kinds preserved). The identity on a 1-member group — same physical
    trace value. *)
val remap_virtual_trace : t -> Reftrace.Trace.t -> Reftrace.Trace.t

val pp : Format.formatter -> t -> unit
