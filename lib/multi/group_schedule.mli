(** Group-level data schedules: a {!Sched.Schedule} over global ranks.

    Fixes, per execution window, the global group rank hosting each
    datum. Costing mirrors {!Sched.Schedule.cost} exactly — reference
    and movement hops weighted by element volume, initial placement free
    — with the group metric ({!Array_group.distance}) in place of the
    mesh metric, so a 1-member group's costs coincide with the plain
    schedule's. *)

type t

(** [create group ~n_windows ~n_data] starts with every datum at global
    rank 0. @raise Invalid_argument on non-positive sizes. *)
val create : Array_group.t -> n_windows:int -> n_data:int -> t

val group : t -> Array_group.t
val n_windows : t -> int
val n_data : t -> int

(** [center t ~window ~data] is the hosting {e global} rank. *)
val center : t -> window:int -> data:int -> int

(** [set_center t ~window ~data g] places the datum.
    @raise Invalid_argument on out-of-range arguments. *)
val set_center : t -> window:int -> data:int -> int -> unit

val centers_of_data : t -> data:int -> int array

(** [moves t] counts inter-window migrations; [array_moves t] counts the
    subset that cross a member boundary (ride the fabric). *)
val moves : t -> int

val array_moves : t -> int

type cost_breakdown = {
  reference : int;  (** Σ volume-weighted window reference cost *)
  movement : int;  (** Σ volume-weighted inter-window migration cost *)
  total : int;
}

(** [cost t trace] prices the schedule under the group metric.
    @raise Invalid_argument if shapes disagree. *)
val cost : t -> Reftrace.Trace.t -> cost_breakdown

val total_cost : t -> Reftrace.Trace.t -> int

(** [of_mesh_schedule group sched] lifts a single-array schedule into a
    1-member group (ranks coincide).
    @raise Invalid_argument unless [group] is degenerate with a member
    matching [sched]'s mesh size. *)
val of_mesh_schedule : Array_group.t -> Sched.Schedule.t -> t

(** [to_mesh_schedule t] lowers a degenerate group's schedule back onto
    its single member; [None] for a real group. *)
val to_mesh_schedule : t -> Sched.Schedule.t option

val copy : t -> t

(** [equal a b] — identical groups (per {!Array_group.equal}), shapes
    and centers. *)
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
