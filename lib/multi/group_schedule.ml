type t = {
  group : Array_group.t;
  centers : int array array; (* centers.(window).(data) = global rank *)
}

let create group ~n_windows ~n_data =
  if n_windows <= 0 then invalid_arg "Group_schedule: n_windows must be positive";
  if n_data <= 0 then invalid_arg "Group_schedule: n_data must be positive";
  { group; centers = Array.make_matrix n_windows n_data 0 }

let group t = t.group
let n_windows t = Array.length t.centers
let n_data t = Array.length t.centers.(0)

let check t ~window ~data =
  if window < 0 || window >= n_windows t then
    invalid_arg (Printf.sprintf "Group_schedule: window %d out of range" window);
  if data < 0 || data >= n_data t then
    invalid_arg (Printf.sprintf "Group_schedule: data %d out of range" data)

let center t ~window ~data =
  check t ~window ~data;
  t.centers.(window).(data)

let set_center t ~window ~data g =
  check t ~window ~data;
  if g < 0 || g >= Array_group.size t.group then
    invalid_arg
      (Printf.sprintf "Group_schedule: rank %d outside the group (size %d)" g
         (Array_group.size t.group));
  t.centers.(window).(data) <- g

let centers_of_data t ~data =
  check t ~window:0 ~data;
  Array.map (fun row -> row.(data)) t.centers

let moves t =
  let count = ref 0 in
  for w = 1 to n_windows t - 1 do
    for d = 0 to n_data t - 1 do
      if t.centers.(w).(d) <> t.centers.(w - 1).(d) then incr count
    done
  done;
  !count

let array_moves t =
  let count = ref 0 in
  for w = 1 to n_windows t - 1 do
    for d = 0 to n_data t - 1 do
      if
        Array_group.member_of_rank t.group t.centers.(w).(d)
        <> Array_group.member_of_rank t.group t.centers.(w - 1).(d)
      then incr count
    done
  done;
  !count

type cost_breakdown = { reference : int; movement : int; total : int }

(* Mirrors Sched.Schedule.cost: every hop weighted by element volume,
   movement charged from window 1 on (initial placement is free, as in
   the paper — every method pays it alike), with the group metric in
   place of Mesh.distance. *)
let cost t trace =
  let space = Reftrace.Trace.space trace in
  if Reftrace.Trace.n_windows trace <> n_windows t then
    invalid_arg "Group_schedule.cost: window counts disagree";
  if Reftrace.Data_space.size space <> n_data t then
    invalid_arg "Group_schedule.cost: data counts disagree";
  let reference = ref 0 and movement = ref 0 in
  for w = 0 to n_windows t - 1 do
    let win = Reftrace.Trace.window trace w in
    for d = 0 to n_data t - 1 do
      let volume = Reftrace.Data_space.volume_of space d in
      let c = t.centers.(w).(d) in
      Reftrace.Window.iter_profile win d (fun ~proc ~count ->
          reference :=
            !reference + (volume * count * Array_group.distance t.group proc c));
      if w > 0 then begin
        let prev = t.centers.(w - 1).(d) in
        if prev <> c then
          movement := !movement + (volume * Array_group.distance t.group prev c)
      end
    done
  done;
  { reference = !reference; movement = !movement; total = !reference + !movement }

let total_cost t trace = (cost t trace).total

let of_mesh_schedule group sched =
  (match Array_group.degenerate group with
  | None -> invalid_arg "Group_schedule.of_mesh_schedule: group is not 1-member"
  | Some m ->
      if Pim.Mesh.size m <> Pim.Mesh.size (Sched.Schedule.mesh sched) then
        invalid_arg "Group_schedule.of_mesh_schedule: member size mismatch");
  let t =
    create group
      ~n_windows:(Sched.Schedule.n_windows sched)
      ~n_data:(Sched.Schedule.n_data sched)
  in
  for w = 0 to n_windows t - 1 do
    for d = 0 to n_data t - 1 do
      t.centers.(w).(d) <- Sched.Schedule.center sched ~window:w ~data:d
    done
  done;
  t

let to_mesh_schedule t =
  match Array_group.degenerate t.group with
  | None -> None
  | Some mesh ->
      let s =
        Sched.Schedule.create mesh ~n_windows:(n_windows t) ~n_data:(n_data t)
      in
      for w = 0 to n_windows t - 1 do
        for d = 0 to n_data t - 1 do
          Sched.Schedule.set_center s ~window:w ~data:d t.centers.(w).(d)
        done
      done;
      Some s

let copy t = { t with centers = Array.map Array.copy t.centers }

let equal a b =
  Array_group.equal a.group b.group
  && n_windows a = n_windows b
  && n_data a = n_data b
  && Array.for_all2 (fun ra rb -> ra = rb) a.centers b.centers

let pp fmt t =
  Format.fprintf fmt "group-schedule(%a, %d windows x %d data, %d moves/%d fabric)"
    Array_group.pp t.group (n_windows t) (n_data t) (moves t) (array_moves t)
