(** The two-level multi-array scheduler.

    [solve] dispatches one of three strategies, most specific first:

    - {e Degenerate delegation} — a 1-member group with no dead array is
      exactly the single-mesh problem, so the member session is handed
      to {!Sched.Scheduler.solve} unchanged and the answer lifted back;
      byte-identical to the plain path by construction (counter
      [multi.degenerate_delegations]).
    - {e Migration DP} — for [Gomcds] under an [Unbounded] policy with
      no member link faults, the per-datum layered DP runs over the
      whole group at once ({!Pathgraph.Layered.solve_group}): member
      blocks keep their axis-table relaxation, the flat fabric
      contributes one scalar edge per member pair, and the per-layer
      cross-array reference cost enters as a per-member constant — so
      trajectories migrate between arrays mid-trace exactly when the
      traffic pays the fabric price. Per-datum optimal, fanned out on
      the domain pool (counter [multi.migration_solves]).
    - {e Static two-level} — everything else: stage one assigns each
      datum to an array ({!Group_problem.assignment}); stage two runs
      the requested algorithm {e unchanged} inside each member on the
      subset trace of its assigned data, and the local answers are
      lifted to global ranks. Bounded capacity, link faults, grouping,
      refinement, annealing — all inherit the single-array machinery
      (counter [multi.static_solves]).

    Determinism matches the single-array contract: any [jobs] setting
    yields the identical schedule. *)

(** [solve gp algorithm] runs the dispatch above.
    @raise Invalid_argument when a bounded policy cannot hold the data. *)
val solve : Group_problem.t -> Sched.Scheduler.algorithm -> Group_schedule.t

(** [evaluate gp algorithm] runs and prices the schedule under the group
    metric. *)
val evaluate :
  Group_problem.t ->
  Sched.Scheduler.algorithm ->
  Group_schedule.t * Group_schedule.cost_breakdown

(** [lower_bound gp] is Σ over data of the volume-weighted per-datum
    migration-DP optimum — the capacity-free floor no schedule beats
    under the group metric. [None] when member link faults force the DP
    off the axis tables. *)
val lower_bound : Group_problem.t -> int option
